"""Graph substrate for the L-opacity reproduction.

This subpackage contains everything the anonymization algorithms need from a
graph library: a mutable simple-graph type, truncated all-pairs-shortest-path
engines (including the paper's Algorithms 2 and 3), random-node sampling,
synthetic generators, structural property reports, and edge-list I/O.
"""

from repro.graph.graph import Edge, Graph, normalize_edge
from repro.graph.matrices import TriangularMatrix, UNREACHABLE, triu_pair_indices
from repro.graph.distance_delta import DistanceDelta, DistanceSession
from repro.graph.distance_cache import LMaxDistanceCache, threshold_distances
from repro.graph.distance import (
    DistanceEngine,
    available_engines,
    bounded_distance_matrix,
    bfs_bounded_distances,
    floyd_warshall,
    l_pruned_floyd_warshall,
    numpy_bounded_distances,
    pointer_l_pruned_floyd_warshall,
)
from repro.graph.generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi_graph,
    path_graph,
    powerlaw_cluster_graph,
    star_graph,
    watts_strogatz_graph,
)
from repro.graph.sampling import sample_nodes, induced_subgraph
from repro.graph.properties import (
    GraphProperties,
    average_clustering_coefficient,
    average_degree,
    degree_standard_deviation,
    diameter,
    graph_properties,
    local_clustering_coefficient,
)
from repro.graph.io import (
    read_edge_list,
    write_edge_list,
    graph_to_dict,
    graph_from_dict,
)

__all__ = [
    "Edge",
    "Graph",
    "normalize_edge",
    "TriangularMatrix",
    "UNREACHABLE",
    "triu_pair_indices",
    "DistanceDelta",
    "DistanceSession",
    "LMaxDistanceCache",
    "threshold_distances",
    "DistanceEngine",
    "available_engines",
    "bounded_distance_matrix",
    "bfs_bounded_distances",
    "floyd_warshall",
    "l_pruned_floyd_warshall",
    "numpy_bounded_distances",
    "pointer_l_pruned_floyd_warshall",
    "barabasi_albert_graph",
    "complete_graph",
    "cycle_graph",
    "empty_graph",
    "erdos_renyi_graph",
    "path_graph",
    "powerlaw_cluster_graph",
    "star_graph",
    "watts_strogatz_graph",
    "sample_nodes",
    "induced_subgraph",
    "GraphProperties",
    "average_clustering_coefficient",
    "average_degree",
    "degree_standard_deviation",
    "diameter",
    "graph_properties",
    "local_clustering_coefficient",
    "read_edge_list",
    "write_edge_list",
    "graph_to_dict",
    "graph_from_dict",
]
