"""Random and deterministic graph generators.

The paper's experiments run on random node samples of real SNAP graphs.  In
this offline reproduction those samples are replaced by synthetic graphs
whose density and clustering regime are calibrated per dataset (see
``repro.datasets.synthetic``); the generators in this module are the raw
building blocks for that calibration and are also useful on their own for
tests and examples.

All generators accept either an integer seed or a pre-built
:class:`random.Random` instance so results are reproducible.
"""

from __future__ import annotations

import random
from typing import Union

from repro.errors import ConfigurationError
from repro.graph.graph import Graph

SeedLike = Union[int, random.Random, None]


def _rng(seed: SeedLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def empty_graph(num_vertices: int) -> Graph:
    """Return a graph with ``num_vertices`` vertices and no edges."""
    return Graph(num_vertices)


def complete_graph(num_vertices: int) -> Graph:
    """Return the complete graph K_n."""
    graph = Graph(num_vertices)
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            graph.add_edge(u, v)
    return graph


def path_graph(num_vertices: int) -> Graph:
    """Return the path graph P_n (vertices chained 0-1-2-...)."""
    graph = Graph(num_vertices)
    for u in range(num_vertices - 1):
        graph.add_edge(u, u + 1)
    return graph


def cycle_graph(num_vertices: int) -> Graph:
    """Return the cycle graph C_n."""
    if num_vertices < 3:
        raise ConfigurationError("a cycle needs at least 3 vertices")
    graph = path_graph(num_vertices)
    graph.add_edge(num_vertices - 1, 0)
    return graph


def star_graph(num_leaves: int) -> Graph:
    """Return a star with hub 0 and ``num_leaves`` leaves."""
    graph = Graph(num_leaves + 1)
    for leaf in range(1, num_leaves + 1):
        graph.add_edge(0, leaf)
    return graph


def erdos_renyi_graph(num_vertices: int, edge_probability: float,
                      seed: SeedLike = None) -> Graph:
    """G(n, p) random graph: each pair becomes an edge with probability p."""
    if not 0.0 <= edge_probability <= 1.0:
        raise ConfigurationError(f"edge_probability must be in [0, 1], got {edge_probability}")
    rng = _rng(seed)
    graph = Graph(num_vertices)
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            if rng.random() < edge_probability:
                graph.add_edge(u, v)
    return graph


def gnm_random_graph(num_vertices: int, num_edges: int, seed: SeedLike = None) -> Graph:
    """G(n, m) random graph: exactly ``num_edges`` distinct edges chosen uniformly."""
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise ConfigurationError(
            f"cannot place {num_edges} edges in a simple graph with {num_vertices} vertices")
    rng = _rng(seed)
    graph = Graph(num_vertices)
    while graph.num_edges < num_edges:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u != v:
            graph.add_edge_if_absent(u, v)
    return graph


def barabasi_albert_graph(num_vertices: int, attachment: int, seed: SeedLike = None) -> Graph:
    """Preferential-attachment (scale-free) graph.

    Each new vertex attaches to ``attachment`` existing vertices chosen with
    probability proportional to their degree, which yields the heavy-tailed
    degree distributions typical of web and social graphs.
    """
    if attachment < 1 or attachment >= num_vertices:
        raise ConfigurationError(
            f"attachment must be in [1, num_vertices), got {attachment} for n={num_vertices}")
    rng = _rng(seed)
    graph = Graph(num_vertices)
    # Start from a star over the first (attachment + 1) vertices so every new
    # vertex has enough attachment targets.
    targets = list(range(attachment))
    repeated: list[int] = []
    for new_vertex in range(attachment, num_vertices):
        chosen: set[int] = set()
        while len(chosen) < attachment:
            if repeated and rng.random() < 0.9:
                candidate = rng.choice(repeated)
            else:
                candidate = rng.choice(targets)
            if candidate != new_vertex:
                chosen.add(candidate)
        for target in chosen:
            graph.add_edge_if_absent(new_vertex, target)
            repeated.append(target)
            repeated.append(new_vertex)
        targets.append(new_vertex)
    return graph


def watts_strogatz_graph(num_vertices: int, nearest_neighbors: int,
                         rewire_probability: float, seed: SeedLike = None) -> Graph:
    """Small-world graph: ring lattice with random rewiring.

    High clustering plus short paths, matching the regime of collaboration
    and friendship networks.
    """
    if nearest_neighbors % 2 != 0:
        raise ConfigurationError("nearest_neighbors must be even")
    if nearest_neighbors >= num_vertices:
        raise ConfigurationError("nearest_neighbors must be smaller than num_vertices")
    if not 0.0 <= rewire_probability <= 1.0:
        raise ConfigurationError("rewire_probability must be in [0, 1]")
    rng = _rng(seed)
    graph = Graph(num_vertices)
    half = nearest_neighbors // 2
    for u in range(num_vertices):
        for offset in range(1, half + 1):
            graph.add_edge_if_absent(u, (u + offset) % num_vertices)
    for u in range(num_vertices):
        for offset in range(1, half + 1):
            v = (u + offset) % num_vertices
            if rng.random() < rewire_probability and graph.has_edge(u, v):
                candidates = [w for w in range(num_vertices)
                              if w != u and not graph.has_edge(u, w)]
                if candidates:
                    graph.remove_edge(u, v)
                    graph.add_edge(u, rng.choice(candidates))
    return graph


def powerlaw_cluster_graph(num_vertices: int, attachment: int,
                           triangle_probability: float, seed: SeedLike = None) -> Graph:
    """Holme–Kim style graph: preferential attachment plus triangle closure.

    Produces scale-free degree distributions *and* tunable clustering, which
    is the regime of the web-graph samples (Google, Berkeley-Stanford) in the
    paper's Table 3.
    """
    if attachment < 1 or attachment >= num_vertices:
        raise ConfigurationError(
            f"attachment must be in [1, num_vertices), got {attachment} for n={num_vertices}")
    if not 0.0 <= triangle_probability <= 1.0:
        raise ConfigurationError("triangle_probability must be in [0, 1]")
    rng = _rng(seed)
    graph = Graph(num_vertices)
    repeated: list[int] = list(range(attachment))
    for new_vertex in range(attachment, num_vertices):
        first_target = rng.choice(repeated)
        while first_target == new_vertex:
            first_target = rng.choice(repeated)
        graph.add_edge_if_absent(new_vertex, first_target)
        repeated.append(first_target)
        repeated.append(new_vertex)
        added = 1
        last_target = first_target
        attempts = 0
        while added < attachment and attempts < 10 * attachment:
            attempts += 1
            if rng.random() < triangle_probability and graph.degree(last_target) > 0:
                # Close a triangle: attach to a neighbor of the previous target.
                neighbor = rng.choice(sorted(graph.adjacency(last_target)))
                candidate = neighbor
            else:
                candidate = rng.choice(repeated)
            if candidate == new_vertex or graph.has_edge(new_vertex, candidate):
                continue
            graph.add_edge(new_vertex, candidate)
            repeated.append(candidate)
            repeated.append(new_vertex)
            last_target = candidate
            added += 1
    return graph
