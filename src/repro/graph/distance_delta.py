"""Incremental maintenance of L-bounded distance matrices.

The greedy heuristics spend almost all of their runtime asking "what would
the distances be after this one edit?" — and a single edge edit only
perturbs the distances of pairs whose geodesic passes near the edited edge
(the structural insight behind dynamic all-pairs shortest-path algorithms,
e.g. Demetrescu & Italiano).  Under the L-truncation this repository works
with, the affected region is even smaller: an edit to edge ``{u, v}`` can
only change cells of rows whose distance to ``u`` or ``v`` is below L.

:class:`DistanceSession` owns the current bounded matrix of a working graph
— held behind a :class:`~repro.graph.distance_store.DistanceStore`, so the
dense tier keeps today's in-RAM matrix while the tiled tier streams row
tiles under a byte budget — and turns a tentative removal/insertion (or a
look-ahead combination) into a :class:`DistanceDelta` — the affected rows
plus their new values — without a from-scratch recomputation:

* **Insertion** of ``{u, v}``: distances only shrink, and every improved
  path decomposes as ``i → u — v → j`` (or the mirror image) with legs that
  avoid the new edge, so the new rows follow from the *old* matrix by the
  vectorized relaxation ``min(D[i, j], D[i, u] + 1 + D[v, j],
  D[i, v] + 1 + D[u, j])``, truncated at L.  Exact, no graph traversal.
* **Removal** of ``{u, v}``: distances only grow, and a row ``i`` can only
  change when some shortest path from ``i`` crosses the edge, which forces
  ``|D[i, u] - D[i, v]| = 1`` and ``min(D[i, u], D[i, v]) ≤ L - 1``.  The
  (few) affected rows are recomputed by vectorized frontier expansion on
  the edited graph, restricted to those source rows (the ``numpy`` engine's
  recurrence on an ``|rows| × n`` slab); when the affected region exceeds a
  size heuristic the session falls back to an exact from-scratch
  recomputation with the configured engine.

Every matrix access is phrased in row blocks (columns are rows transposed —
the matrix is symmetric), which is exactly the store seam's contract; the
adjacency mirror follows the same split: the dense tier keeps the
BLAS-friendly float32 matrix, the tiled tier works off a CSR snapshot with
an edit-override set, producing bit-identical frontier booleans through
exact integer neighbor counts.

Multi-edge combinations are previewed sequentially, tracking intermediate
state in a sparse row overlay (changed cells always have both endpoints
among the affected rows, so overlaid rows compose consistently) — which
keeps every step exact without copying the matrix per candidate.  Both
code paths yield matrices identical to
:func:`repro.graph.distance.bounded_distance_matrix` on the edited graph;
the property suite asserts this bit-for-bit.

:meth:`DistanceSession.preview_batch` evaluates *many independent
single-edge candidates* of the same kind in one stacked pass: all removal
candidates share one ``|rows_total| × n`` slab recompute (with per-row
corrections for each candidate's own removed edge), and all insertion
candidates share one broadcast relaxation.  The batch is bit-identical to
the equivalent sequence of :meth:`preview` calls — including the per-edit
fallback heuristic and the graph-mutation order the sequential path leaves
behind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError, DistanceMemoryError
from repro.graph.distance import DistanceEngine, bounded_distance_matrix
from repro.graph.distance_store import (
    CSRAdjacency,
    DenseStore,
    DistanceStore,
    StoreConfig,
    TiledStore,
)
from repro.graph.graph import Edge, Graph, normalize_edge
from repro.graph.matrices import distance_dtype


@dataclass(frozen=True)
class DistanceDelta:
    """Effect of one (tentative) edit on the bounded distance matrix.

    ``rows`` lists the affected row indices and ``new_rows`` their updated
    values; every cell outside ``rows × V ∪ V × rows`` is unchanged, and the
    symmetric counterpart of each listed cell changes identically.  When the
    affected region exceeded the session's fallback heuristic,
    ``from_scratch`` is set and ``new_rows`` is the full recomputed matrix
    (with ``rows`` spanning every vertex).
    """

    removals: Tuple[Edge, ...]
    insertions: Tuple[Edge, ...]
    rows: np.ndarray
    new_rows: np.ndarray
    from_scratch: bool = False

    @property
    def num_affected_rows(self) -> int:
        """Number of rows whose values change under this edit."""
        return int(self.rows.size)


class _DenseAdjacency:
    """Dense-tier adjacency mirror: the historical float32 matrix.

    float32 keeps the 0/1 dot products exact (up to 2**24 neighbors; a
    uint8 accumulator would wrap at 256) and stays BLAS-friendly.
    """

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        self._matrix = graph.adjacency_matrix(dtype=np.float32)

    def block(self, rows: np.ndarray) -> np.ndarray:
        """Fresh writable boolean adjacency rows."""
        return self._matrix[rows].astype(np.bool_)

    def expand(self, frontier: np.ndarray) -> np.ndarray:
        """Per-row neighbor weights of a boolean frontier (``> 0`` = reach)."""
        return frontier.astype(np.float32) @ self._matrix

    def set_edge(self, u: int, v: int, present: bool) -> None:
        self._matrix[u, v] = self._matrix[v, u] = 1.0 if present else 0.0

    def rebuild(self) -> None:
        self._matrix = self._graph.adjacency_matrix(dtype=np.float32)


class _CSROverlayAdjacency:
    """Tiled-tier adjacency mirror: CSR snapshot plus an edit-override set.

    No ``n × n`` matrix anywhere: frontier expansion gathers neighbors from
    the CSR arrays and counts them with an exact integer ``bincount``, so
    the ``> 0`` reachability booleans equal the dense float32 product bit
    for bit.  Edits accumulate in small add/remove override sets (previews
    cancel their own overrides on revert); once the net override count
    passes a threshold the snapshot is rebuilt from the graph — every call
    site mutates the graph *before* :meth:`set_edge`, so the graph is
    always the source of truth.
    """

    _REBUILD_THRESHOLD = 256

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        self._snapshot = CSRAdjacency.from_graph(graph)
        self._added: set = set()
        self._removed: set = set()

    def block(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.int64)
        n = self._snapshot.num_vertices
        out = np.zeros((rows.size, n), dtype=np.bool_)
        rep, neighbors = self._snapshot.gather(rows)
        out[rep, neighbors] = True
        for (a, b), present in self._override_items():
            out[rows == a, b] = present
            out[rows == b, a] = present
        return out

    def expand(self, frontier: np.ndarray) -> np.ndarray:
        num_rows, n = frontier.shape
        rows_idx, vertices = np.nonzero(frontier)
        rep, neighbors = self._snapshot.gather(vertices)
        counts = np.bincount(rows_idx[rep] * n + neighbors,
                             minlength=num_rows * n).reshape(num_rows, n)
        for (a, b), present in self._override_items():
            sign = 1 if present else -1
            counts[:, b] += sign * frontier[:, a]
            counts[:, a] += sign * frontier[:, b]
        return counts

    def _override_items(self):
        for edge in self._added:
            yield edge, True
        for edge in self._removed:
            yield edge, False

    def set_edge(self, u: int, v: int, present: bool) -> None:
        edge = (u, v) if u < v else (v, u)
        if present:
            if edge in self._removed:
                self._removed.discard(edge)
            else:
                self._added.add(edge)
        else:
            if edge in self._added:
                self._added.discard(edge)
            else:
                self._removed.add(edge)
        if len(self._added) + len(self._removed) > self._REBUILD_THRESHOLD:
            self.rebuild()

    def rebuild(self) -> None:
        self._snapshot = CSRAdjacency.from_graph(self._graph)
        self._added.clear()
        self._removed.clear()


class DistanceSession:
    """Stateful owner of a working graph's L-bounded distance matrix.

    The session holds a *reference* to ``graph``; all mutations of the graph
    must go through :meth:`apply` (or be followed by :meth:`refresh`) so the
    matrix stays in sync.  :meth:`preview` answers tentative edits without
    leaving any lasting change on either the graph or the matrix.

    Parameters
    ----------
    graph:
        The working graph (shared, not copied).
    length_bound:
        The L truncation of the distance matrix.
    engine:
        Distance engine used for the initial computation and for the
        from-scratch fallback (dense tier).
    fallback_row_fraction:
        When a removal would touch more than ``max(16, fraction * n)`` rows,
        the preview recomputes the full matrix instead of the affected slab
        (the slab path would cost more than it saves).  ``None`` (default)
        derives the fraction from the graph's measured density × L — the
        expected L-ball size — and keeps *recalibrating* it from the
        affected-row counts the batched scans observe, so the heuristic
        tracks the graph instead of a hard-coded 0.5.  An explicit float
        pins the fraction; ``0.0`` forces the from-scratch path on every
        removal (useful for testing).  Either way the chosen value only
        routes between two value-identical code paths (slab vs
        from-scratch), so results never depend on it.  The tiled tier pins
        the fraction to ``1.0``: a from-scratch fallback would materialize
        the dense matrix the tier exists to avoid, and the slab path is
        bit-identical by the property-suite contract.
    initial_distances:
        Optional precomputed L-bounded distances of ``graph`` — either a
        matrix (e.g. a thresholded slice of a shared
        :class:`~repro.graph.distance_cache.LMaxDistanceCache`) or a
        :class:`~repro.graph.distance_store.DistanceStore` served by the
        tier-aware cache.  The session takes ownership (the payload is
        mutated in place by :meth:`commit`); it must equal
        ``bounded_distance_matrix(graph, length_bound)`` or every delta
        downstream is wrong.
    store_config:
        Scale-tier policy consulted only when ``initial_distances`` is
        ``None``; defaults to ``auto`` under the default budget (dense for
        every historical workload).
    """

    def __init__(self, graph: Graph, length_bound: int,
                 engine: DistanceEngine = "numpy",
                 fallback_row_fraction: Optional[float] = None,
                 initial_distances: Union[np.ndarray, DistanceStore, None] = None,
                 store_config: Optional[StoreConfig] = None) -> None:
        if length_bound < 1:
            raise ConfigurationError(f"length_bound must be >= 1, got {length_bound}")
        if fallback_row_fraction is not None \
                and not 0.0 <= fallback_row_fraction <= 1.0:
            raise ConfigurationError(
                f"fallback_row_fraction must be in [0, 1], got {fallback_row_fraction}")
        self._graph = graph
        self._length = int(length_bound)
        self._engine = engine
        self._requested_fraction = fallback_row_fraction
        self._auto_fraction = fallback_row_fraction is None
        self._fallback_fraction = (self._estimate_fraction()
                                   if self._auto_fraction
                                   else float(fallback_row_fraction))
        self._observed_rows = 0
        self._observed_candidates = 0
        self._store = self._init_store(initial_distances, store_config)
        if isinstance(self._store, TiledStore):
            self._fallback_fraction = 1.0
            self._auto_fraction = False
            self._mirror = _CSROverlayAdjacency(graph)
        else:
            self._mirror = _DenseAdjacency(graph)

    def _estimate_fraction(self) -> float:
        """Initial auto fraction: the expected relative L-ball size.

        A removal's affected rows live within L of an endpoint, so the
        density-derived ball size ``degree^(L-1)`` (doubled for the two
        endpoints, with generous 8x headroom before the from-scratch path
        can pay off) estimates the fraction of rows a typical removal
        touches; the batched scans keep refining it with measured counts.
        """
        n = max(1, self._graph.num_vertices)
        degree = max(1.0, 2.0 * self._graph.num_edges / n)
        ball = min(float(n), 2.0 * degree ** max(0, self._length - 1))
        return min(1.0, max(0.05, 8.0 * ball / n))

    def _init_store(self,
                    initial_distances: Union[np.ndarray, DistanceStore, None],
                    store_config: Optional[StoreConfig]) -> DistanceStore:
        n = self._graph.num_vertices
        if isinstance(initial_distances, DistanceStore):
            if initial_distances.num_vertices != n:
                raise ConfigurationError(
                    f"initial store covers {initial_distances.num_vertices} "
                    f"vertices, the graph has {n}")
            if initial_distances.length_bound != self._length:
                raise ConfigurationError(
                    f"initial store is bounded at "
                    f"{initial_distances.length_bound}, the session needs "
                    f"{self._length}")
            return initial_distances
        if initial_distances is not None:
            if initial_distances.shape != (n, n):
                raise ConfigurationError(
                    f"initial_distances must be {n}x{n}, "
                    f"got {initial_distances.shape}")
            matrix = np.ascontiguousarray(initial_distances)
            if matrix.dtype != distance_dtype(self._length):
                # Legacy int32 payloads: renormalize the sentinel into the
                # contract dtype (values ≤ L are untouched, so the result
                # stays bit-identical to the engine output at L).
                from repro.graph.distance_cache import threshold_distances
                matrix = threshold_distances(matrix, self._length)
            return DenseStore(matrix, self._length)
        config = store_config or StoreConfig()
        tier = config.resolve(n, distance_dtype(self._length))
        if tier == "tiled":
            return TiledStore(self._graph, self._length,
                              tile_rows=config.tile_rows,
                              budget_bytes=config.budget_bytes,
                              spill_dir=config.spill_dir)
        matrix = bounded_distance_matrix(self._graph, self._length,
                                         engine=self._engine)
        return DenseStore(matrix, self._length)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The working graph this session tracks."""
        return self._graph

    @property
    def length_bound(self) -> int:
        """The L truncation."""
        return self._length

    @property
    def store(self) -> DistanceStore:
        """The distance store backing this session (row-block reads)."""
        return self._store

    @property
    def fallback_row_fraction(self) -> float:
        """The currently effective fallback fraction (auto-recalibrated)."""
        return self._fallback_fraction

    @property
    def requested_fallback_fraction(self) -> Optional[float]:
        """The constructor's fraction (``None`` = auto-derived)."""
        return self._requested_fraction

    def observe_affected_rows(self, rows_total: int, candidates: int) -> None:
        """Feed measured affected-row counts into the auto fraction.

        The batched scans call this with their per-chunk totals (parallel
        shards ship their workers' totals through the same hook); once
        enough candidates have been observed the fraction is re-derived
        from the measured mean so the heuristic tracks the *actual* graph
        instead of the density estimate.  Routing-only: recalibration never
        changes any result.
        """
        if candidates <= 0:
            return
        self._observed_rows += int(rows_total)
        self._observed_candidates += int(candidates)
        if not self._auto_fraction or self._observed_candidates < 16:
            return
        n = max(1, self._graph.num_vertices)
        mean_rows = self._observed_rows / self._observed_candidates
        self._fallback_fraction = min(1.0, max(0.05, 8.0 * mean_rows / n))

    def take_observed_stats(self) -> Tuple[int, int]:
        """Return and reset ``(affected rows, candidates)`` observed so far.

        The scan-pool workers drain their counters through this after every
        shard so the parent can fold them into its own auto fraction.
        """
        stats = (self._observed_rows, self._observed_candidates)
        self._observed_rows = 0
        self._observed_candidates = 0
        return stats

    def replay_scan_mutations(
            self, candidates: Sequence[Tuple[Sequence[Edge],
                                             Sequence[Edge]]]) -> None:
        """Replay the serial scan's graph mutate/restore sequence.

        A parallel scan evaluates candidates in worker processes, so the
        parent's graph never sees the per-candidate mutate/restore churn a
        serial scan performs — but adjacency-*set* iteration order is
        mutation-history-dependent, and seeded tie-breaks downstream
        consume it.  This replays, per candidate, exactly the sequence
        every serial path leaves behind (removals removed, insertions
        added, insertions removed, removals re-added — the batched stacked
        passes, the sequential previews, and the L=1 tally all reduce to
        it), touching only the graph: the adjacency mirror and the store
        are skipped because their outputs are exact values independent of
        internal mutation history.
        """
        for removals, insertions in candidates:
            for u, v in removals:
                self._graph.remove_edge(u, v)
            for u, v in insertions:
                self._graph.add_edge(u, v)
            for u, v in insertions:
                self._graph.remove_edge(u, v)
            for u, v in removals:
                self._graph.add_edge(u, v)

    def close(self) -> None:
        """Release store resources (tiled spill files); idempotent."""
        if isinstance(self._store, TiledStore):
            self._store.close()

    @property
    def distances(self) -> np.ndarray:
        """The current dense matrix (dense tier only; treat as read-only).

        The tiled tier never materializes ``n × n`` — stream through
        :meth:`rows` / :meth:`row_blocks` instead.
        """
        if isinstance(self._store, DenseStore):
            return self._store.array
        raise DistanceMemoryError(
            "this session runs on the tiled scale tier and has no dense "
            "matrix; read row blocks via session.rows()/row_blocks()")

    def rows(self, block: Sequence[int]) -> np.ndarray:
        """Fresh ``|block| × n`` distance rows (columns by symmetry)."""
        return self._store.rows(block)

    def row_blocks(self) -> Iterator[Tuple[int, int]]:
        """Contiguous ``(start, stop)`` row ranges sized for this store."""
        return self._store.row_blocks()

    # ------------------------------------------------------------------
    # delta evaluation
    # ------------------------------------------------------------------
    def preview(self, removals: Sequence[Edge] = (),
                insertions: Sequence[Edge] = ()) -> DistanceDelta:
        """Return the delta of tentatively applying the edit, leaving no trace.

        Removals are processed before insertions, each against the state
        produced by its predecessors, exactly mirroring how the greedy
        algorithms apply a chosen combination.  The graph is touched (and
        restored) with the same mutation sequence the scratch reference
        uses, so adjacency-set iteration order stays mode-independent.
        """
        removals = tuple(normalize_edge(u, v) for u, v in removals)
        insertions = tuple(normalize_edge(u, v) for u, v in insertions)
        applied = []
        try:
            return self._compute_delta(removals, insertions, applied)
        finally:
            self._revert(applied)

    def preview_batch(self, removals: Sequence[Edge] = (),
                      insertions: Sequence[Edge] = (),
                      skip_unchanged: bool = False) -> List[DistanceDelta | None]:
        """Deltas of *independent* single-edge candidates, one stacked pass.

        Unlike :meth:`preview` — where the listed edges form one combined
        edit — every edge here is its own candidate: the result is
        bit-identical to ``[preview(removals=[e]) for e in removals] +
        [preview(insertions=[e]) for e in insertions]``, but all removal
        candidates share a single ``|rows_total| × n`` slab recompute and
        all insertion candidates share a single broadcast relaxation,
        eliminating the per-candidate numpy call overhead that dominates
        the greedy scans.  The graph is touched (and restored) per
        candidate with the same mutation sequence the sequential previews
        use, so adjacency-set iteration order stays scan-mode-independent.

        ``skip_unchanged=True`` is the fused-scan variant for consumers
        that only tally *within-L membership flips* (the opacity sessions):
        candidates whose edit flips no cell across the L boundary — e.g. a
        removal whose every perturbed pair stays within L via an alternate
        path — yield ``None`` instead of a :class:`DistanceDelta`, so no
        per-candidate delta object (or row copy) is materialized for no-op
        rows.  From-scratch fallbacks always materialize (their consumers
        recount from the full matrix).
        """
        removal_edges = [normalize_edge(u, v) for u, v in removals]
        insertion_edges = [normalize_edge(u, v) for u, v in insertions]
        deltas = self._batch_removal_deltas(removal_edges, skip_unchanged)
        deltas += self._batch_insertion_deltas(insertion_edges, skip_unchanged)
        return deltas

    def _batch_slab_row_cap(self) -> int:
        """Rows per stacked pass, bounding the workspace to ~32 MB of int64.

        On the tiled tier the cap is additionally bounded by the store's
        byte budget: a stacked pass keeps ~16 bytes of frontier-expansion
        workspace per slab cell (the int64 expansion counts plus the
        boolean frontier/reached planes), so capping rows at
        ``budget // (16 n)`` keeps the scan's transient slabs inside the
        same envelope the tile cache honours — instead of densifying
        per-candidate slabs past ``scale_budget_bytes``.
        """
        n = max(1, self._graph.num_vertices)
        cap = max(256, (1 << 22) // n)
        if isinstance(self._store, TiledStore):
            cap = min(cap, self._store.budget_bytes // (16 * n))
        return max(16, cap)

    def _batch_candidate_cap(self) -> int:
        """Candidates per ``n × |chunk|`` column gather (bounds the gather)."""
        n = max(1, self._graph.num_vertices)
        cap = max(64, (1 << 21) // n)
        if isinstance(self._store, TiledStore):
            cap = min(cap, self._store.budget_bytes // (32 * n))
        return max(16, cap)

    def _slab_chunks(self, slab: List[Tuple[int, np.ndarray]]
                     ) -> Iterator[List[Tuple[int, np.ndarray]]]:
        """Greedily pack slab entries into row-capped stacked-pass chunks."""
        cap = self._batch_slab_row_cap()
        start = 0
        while start < len(slab):
            stop = start
            total_rows = 0
            while stop < len(slab) and (stop == start
                                        or total_rows + slab[stop][1].size <= cap):
                total_rows += slab[stop][1].size
                stop += 1
            yield slab[start:stop]
            start = stop

    def _batch_affected_rows(self, edges: Sequence[Edge],
                             removal: bool) -> List[np.ndarray]:
        """Affected-row arrays of every candidate from one stacked gather.

        Vectorizes :meth:`_removal_rows` (resp. the insertion row filter)
        across the chunk's candidates: both endpoint columns are gathered at
        once — as matrix *rows*, transposed by symmetry — and the
        per-candidate row sets split out of a single ``nonzero``.
        """
        endpoint_u = np.fromiter((edge[0] for edge in edges), dtype=np.int64,
                                 count=len(edges))
        endpoint_v = np.fromiter((edge[1] for edge in edges), dtype=np.int64,
                                 count=len(edges))
        du = self._store.rows(endpoint_u).astype(np.int64)
        dv = self._store.rows(endpoint_v).astype(np.int64)
        near = np.minimum(du, dv) <= self._length - 1
        affected = (near & (np.abs(du - dv) == 1)) if removal else near
        counts = affected.sum(axis=1)
        if removal:
            self.observe_affected_rows(int(counts.sum()), len(edges))
        candidate_index, row_index = np.nonzero(affected)
        del candidate_index
        return np.split(row_index, np.cumsum(counts)[:-1])

    def _batch_removal_deltas(self, edges: List[Edge],
                              skip_unchanged: bool = False
                              ) -> List[DistanceDelta | None]:
        n = self._graph.num_vertices
        deltas: List[DistanceDelta | None] = [None] * len(edges)
        slab: List[Tuple[int, np.ndarray]] = []  # (candidate index, affected rows)
        threshold = self._fallback_threshold(n)
        candidate_cap = self._batch_candidate_cap()
        for chunk_start in range(0, len(edges), candidate_cap):
            chunk = edges[chunk_start:chunk_start + candidate_cap]
            rows_per_candidate = self._batch_affected_rows(chunk, removal=True)
            for local, (u, v) in enumerate(chunk):
                index = chunk_start + local
                # Same mutate/restore sequence as a sequential preview, so
                # adjacency sets end up with identical iteration histories.
                self._graph.remove_edge(u, v)
                rows = rows_per_candidate[local]
                if rows.size > threshold:
                    full = bounded_distance_matrix(self._graph, self._length,
                                                   engine=self._engine)
                    deltas[index] = DistanceDelta(
                        (edges[index],), (), np.arange(n, dtype=np.int64), full,
                        from_scratch=True)
                else:
                    slab.append((index, rows))
                self._graph.add_edge(u, v)
        for slab_chunk in self._slab_chunks(slab):
            self._fill_removal_chunk(edges, slab_chunk, deltas, skip_unchanged)
        return deltas

    def _fill_removal_chunk(self, edges: List[Edge],
                            chunk: List[Tuple[int, np.ndarray]],
                            deltas: List[DistanceDelta | None],
                            skip_unchanged: bool) -> None:
        """Recompute one chunk's affected rows in a shared stacked slab."""
        n = self._graph.num_vertices
        empty_rows = np.empty(0, dtype=np.int64)
        empty_block = np.empty((0, n), dtype=self._store.dtype)
        live = [(index, rows) for index, rows in chunk if rows.size]
        if not skip_unchanged:
            for index, rows in chunk:
                if not rows.size:
                    deltas[index] = DistanceDelta((edges[index],), (),
                                                  empty_rows, empty_block)
        if not live:
            return
        rows_cat = np.concatenate([rows for _, rows in live])
        sizes = [rows.size for _, rows in live]
        edge_u = np.repeat(np.fromiter((edges[index][0] for index, _ in live),
                                       dtype=np.int64, count=len(live)), sizes)
        edge_v = np.repeat(np.fromiter((edges[index][1] for index, _ in live),
                                       dtype=np.int64, count=len(live)), sizes)
        block = self._rows_block_batch(rows_cat, edge_u, edge_v)
        old_block = self._store.rows(rows_cat)
        changed_cat = (block != old_block).any(axis=1)
        if skip_unchanged:
            # A candidate only matters to flip-tallying consumers when some
            # cell crosses the L boundary (within-L membership flips).
            flips_cat = ((block <= self._length)
                         != (old_block <= self._length)).any(axis=1)
        offset = 0
        for index, rows in live:
            candidate_block = block[offset:offset + rows.size]
            changed = changed_cat[offset:offset + rows.size]
            if skip_unchanged and not flips_cat[offset:offset + rows.size].any():
                offset += rows.size
                continue
            offset += rows.size
            deltas[index] = DistanceDelta(
                (edges[index],), (), rows[changed],
                np.ascontiguousarray(candidate_block[changed],
                                     dtype=self._store.dtype))

    def _rows_block_batch(self, rows: np.ndarray, edge_u: np.ndarray,
                          edge_v: np.ndarray) -> np.ndarray:
        """:meth:`_rows_block` across candidates, one frontier expansion.

        ``edge_u``/``edge_v`` name the removed edge of each slab row's
        candidate.  The expansion runs against the *unedited* adjacency and
        subtracts, per row, the single product term its candidate's removed
        edge would have contributed — the mirror's neighbor weights are
        exact (float32 0/1 dots or integer counts), so the corrected
        frontier equals the one computed on the edited adjacency bit for
        bit.

        Source rows are independent, so slabs larger than the row cap (a
        single giant candidate admitted alone by :meth:`_slab_chunks`) are
        streamed through it in chunks — bit-identical, with the
        frontier-expansion workspace bounded by the cap.
        """
        cap = self._batch_slab_row_cap()
        if rows.size > cap:
            return np.concatenate(
                [self._rows_block_batch_chunk(rows[start:start + cap],
                                              edge_u[start:start + cap],
                                              edge_v[start:start + cap])
                 for start in range(0, rows.size, cap)], axis=0)
        return self._rows_block_batch_chunk(rows, edge_u, edge_v)

    def _rows_block_batch_chunk(self, rows: np.ndarray, edge_u: np.ndarray,
                                edge_v: np.ndarray) -> np.ndarray:
        n = self._graph.num_vertices
        total = rows.size
        sentinel = self._store.sentinel
        block = np.full((total, n), sentinel, dtype=self._store.dtype)
        source_index = np.arange(total)
        block[source_index, rows] = 0
        reached = np.zeros((total, n), dtype=np.bool_)
        reached[source_index, rows] = True
        frontier = self._mirror.block(rows)
        # A source row that is itself an endpoint of its candidate's removed
        # edge must not start from the other endpoint.
        at_u = rows == edge_u
        frontier[source_index[at_u], edge_v[at_u]] = False
        at_v = rows == edge_v
        frontier[source_index[at_v], edge_u[at_v]] = False
        step = 1
        while step <= self._length and frontier.any():
            new = frontier & ~reached
            block[new & (block == sentinel)] = step
            reached |= new
            if step == self._length:
                break
            product = self._mirror.expand(new)
            product[source_index, edge_v] -= new[source_index, edge_u]
            product[source_index, edge_u] -= new[source_index, edge_v]
            frontier = product > 0
            step += 1
        return block

    def _batch_insertion_deltas(self, edges: List[Edge],
                                skip_unchanged: bool = False
                                ) -> List[DistanceDelta | None]:
        n = self._graph.num_vertices
        deltas: List[DistanceDelta | None] = [None] * len(edges)
        empty_rows = np.empty(0, dtype=np.int64)
        empty_block = np.empty((0, n), dtype=self._store.dtype)
        slab: List[Tuple[int, np.ndarray]] = []
        candidate_cap = self._batch_candidate_cap()
        for chunk_start in range(0, len(edges), candidate_cap):
            chunk = edges[chunk_start:chunk_start + candidate_cap]
            rows_per_candidate = self._batch_affected_rows(chunk, removal=False)
            for local, (u, v) in enumerate(chunk):
                index = chunk_start + local
                self._graph.add_edge(u, v)
                rows = rows_per_candidate[local]
                if rows.size == 0:
                    if not skip_unchanged:
                        deltas[index] = DistanceDelta((), (edges[index],),
                                                      empty_rows, empty_block)
                else:
                    slab.append((index, rows))
                self._graph.remove_edge(u, v)
        for slab_chunk in self._slab_chunks(slab):
            self._fill_insertion_chunk(edges, slab_chunk, deltas, skip_unchanged)
        return deltas

    def _fill_insertion_chunk(self, edges: List[Edge],
                              chunk: List[Tuple[int, np.ndarray]],
                              deltas: List[DistanceDelta | None],
                              skip_unchanged: bool) -> None:
        """Relax one chunk's affected rows in a shared broadcast pass.

        The single-edge relaxation of :meth:`_relax_insertion` applied to the
        stacked ``(candidate, row)`` pairs at once; the matrix is symmetric,
        so each pair's endpoint columns are read as matrix rows.
        """
        rows_cat = np.concatenate([rows for _, rows in chunk])
        sizes = [rows.size for _, rows in chunk]
        edge_u = np.repeat(np.fromiter((edges[index][0] for index, _ in chunk),
                                       dtype=np.int64, count=len(chunk)), sizes)
        edge_v = np.repeat(np.fromiter((edges[index][1] for index, _ in chunk),
                                       dtype=np.int64, count=len(chunk)), sizes)
        # Only the gathered slab rows are widened to int64 (the arithmetic
        # must not wrap on sentinel + 1 + d), never the full matrix.
        old_block = self._store.rows(rows_cat)
        block = self._relax_rows_batch(old_block, edge_u, edge_v)
        changed_cat = (block != old_block).any(axis=1)
        if skip_unchanged:
            flips_cat = ((block <= self._length)
                         != (old_block <= self._length)).any(axis=1)
        offset = 0
        for index, rows in chunk:
            candidate_block = block[offset:offset + rows.size]
            changed = changed_cat[offset:offset + rows.size]
            if skip_unchanged and not flips_cat[offset:offset + rows.size].any():
                offset += rows.size
                continue
            offset += rows.size
            deltas[index] = DistanceDelta(
                (), (edges[index],), rows[changed],
                np.ascontiguousarray(candidate_block[changed],
                                     dtype=self._store.dtype))

    def _relax_rows_batch(self, old_block: np.ndarray, edge_u: np.ndarray,
                          edge_v: np.ndarray) -> np.ndarray:
        """Stacked single-edge relaxation of ``old_block``'s rows.

        Rows are independent, so slabs beyond the row cap stream through
        it in chunks — the int64 widening and the per-row endpoint gathers
        (the pass's transient workspace) stay bounded by the cap while the
        result is bit-identical.
        """
        cap = self._batch_slab_row_cap()
        if old_block.shape[0] > cap:
            return np.concatenate(
                [self._relax_rows_chunk(old_block[start:start + cap],
                                        edge_u[start:start + cap],
                                        edge_v[start:start + cap])
                 for start in range(0, old_block.shape[0], cap)], axis=0)
        return self._relax_rows_chunk(old_block, edge_u, edge_v)

    def _relax_rows_chunk(self, old_block: np.ndarray, edge_u: np.ndarray,
                          edge_v: np.ndarray) -> np.ndarray:
        block = old_block.astype(np.int64)
        within = np.arange(old_block.shape[0])
        du_values = block[within, edge_u]
        dv_values = block[within, edge_v]
        np.minimum(block,
                   (du_values + 1)[:, None]
                   + self._store.rows(edge_v).astype(np.int64),
                   out=block)
        np.minimum(block,
                   (dv_values + 1)[:, None]
                   + self._store.rows(edge_u).astype(np.int64),
                   out=block)
        block[block > self._length] = self._store.sentinel
        return block.astype(self._store.dtype)

    def stage(self, removals: Sequence[Edge] = (),
              insertions: Sequence[Edge] = ()) -> DistanceDelta:
        """Apply the edit to the graph and return its delta, matrix untouched.

        Two-phase counterpart of :meth:`preview` for *permanent* edits: the
        graph (and adjacency mirror) are mutated exactly once, while the
        distance matrix still holds pre-edit values until :meth:`commit`
        folds the delta in — callers can diff counts against the old matrix
        in between.
        """
        removals = tuple(normalize_edge(u, v) for u, v in removals)
        insertions = tuple(normalize_edge(u, v) for u, v in insertions)
        applied = []
        try:
            return self._compute_delta(removals, insertions, applied)
        except BaseException:
            self._revert(applied)
            raise

    def commit(self, delta: DistanceDelta) -> None:
        """Fold a :meth:`stage`-d delta into the store."""
        if delta.from_scratch:
            self._store.replace(delta.new_rows)
        elif delta.rows.size:
            self._store.write_rows(delta.rows, delta.new_rows)

    def apply(self, removals: Sequence[Edge] = (),
              insertions: Sequence[Edge] = (),
              delta: DistanceDelta | None = None) -> DistanceDelta:
        """Apply the edit to the graph and fold its delta into the matrix.

        ``delta`` may carry the result of a matching :meth:`preview` to avoid
        recomputing it; it must describe exactly the same edit.
        """
        norm_removals = tuple(normalize_edge(u, v) for u, v in removals)
        norm_insertions = tuple(normalize_edge(u, v) for u, v in insertions)
        if delta is None:
            delta = self.stage(norm_removals, norm_insertions)
        else:
            if (delta.removals, delta.insertions) != (norm_removals, norm_insertions):
                raise ConfigurationError("delta does not describe the requested edit")
            for u, v in norm_removals:
                self._graph.remove_edge(u, v)
                self._mirror.set_edge(u, v, False)
            for u, v in norm_insertions:
                self._graph.add_edge(u, v)
                self._mirror.set_edge(u, v, True)
        self.commit(delta)
        return delta

    def _compute_delta(self, removals: Tuple[Edge, ...],
                       insertions: Tuple[Edge, ...],
                       applied: list) -> DistanceDelta:
        """Build the delta, applying ops to graph/adjacency as it goes.

        Every applied op is recorded in ``applied`` (for the caller to
        revert, or keep); the distance matrix itself is never written.

        Multi-op sequences track intermediate state in a sparse *row
        overlay* instead of a full matrix copy: every changed cell has both
        endpoints among its op's affected rows, so a base row not in the
        overlay is guaranteed untouched by earlier ops and reads compose
        consistently.
        """
        ops = [("remove", edge) for edge in removals]
        ops += [("insert", edge) for edge in insertions]
        n = self._graph.num_vertices
        if not ops:
            return DistanceDelta(removals, insertions,
                                 np.empty(0, dtype=np.int64),
                                 np.empty((0, n), dtype=self._store.dtype))
        overlay: dict = {}  # row index -> updated store-dtype row

        def column(j: int) -> np.ndarray:
            col = self._store.rows(np.asarray([j], dtype=np.int64))[0]
            col = col.astype(np.int64)
            for i, row in overlay.items():
                col[i] = row[j]
            return col

        scratch = False
        for kind, (u, v) in ops:
            if kind == "remove":
                self._graph.remove_edge(u, v)
                self._mirror.set_edge(u, v, False)
            else:
                self._graph.add_edge(u, v)
                self._mirror.set_edge(u, v, True)
            applied.append((kind, (u, v)))
            if scratch:
                continue
            du, dv = column(u), column(v)
            if kind == "remove":
                rows = self._removal_rows(du, dv)
                self.observe_affected_rows(int(rows.size), 1)
                if rows.size > self._fallback_threshold(n):
                    scratch = True
                    continue
                block = self._rows_block(rows)
            else:
                rows = np.nonzero(np.minimum(du, dv) <= self._length - 1)[0]
                if rows.size == 0:
                    continue
                base = self._store.rows(rows)
                for position, index in enumerate(rows.tolist()):
                    if index in overlay:
                        base[position] = overlay[index]
                block = self._relax_insertion(base, du, dv, rows)
            for position, index in enumerate(rows.tolist()):
                overlay[index] = block[position]
        if scratch:
            full = bounded_distance_matrix(self._graph, self._length,
                                           engine=self._engine)
            return DistanceDelta(removals, insertions,
                                 np.arange(n, dtype=np.int64), full,
                                 from_scratch=True)
        rows = np.fromiter(sorted(overlay), dtype=np.int64, count=len(overlay))
        block = (np.stack([overlay[int(i)] for i in rows])
                 if rows.size else np.empty((0, n), dtype=self._store.dtype))
        # Drop rows that did not actually change, so downstream count
        # deltas only walk genuinely perturbed cells.
        if rows.size:
            changed = (block != self._store.rows(rows)).any(axis=1)
            rows = rows[changed]
            block = block[changed]
        return DistanceDelta(removals, insertions, rows,
                             np.ascontiguousarray(block,
                                                  dtype=self._store.dtype))

    def _revert(self, applied: list) -> None:
        """Undo applied ops: insertions first, then removals, forward order.

        This is the exact restore sequence of the pre-session
        copy-evaluate-restore loops, preserved so both evaluation modes
        leave identical adjacency-set histories behind.
        """
        for kind, (u, v) in applied:
            if kind == "insert":
                self._graph.remove_edge(u, v)
                self._mirror.set_edge(u, v, False)
        for kind, (u, v) in applied:
            if kind == "remove":
                self._graph.add_edge(u, v)
                self._mirror.set_edge(u, v, True)

    def refresh(self) -> None:
        """Recompute the distances from scratch (after out-of-band graph edits)."""
        if isinstance(self._store, TiledStore):
            old = self._store
            self._store = TiledStore(self._graph, self._length,
                                     tile_rows=old.tile_rows,
                                     budget_bytes=old.budget_bytes,
                                     spill_dir=old.spill_dir)
            old.close()
        else:
            self._store = DenseStore(
                bounded_distance_matrix(self._graph, self._length,
                                        engine=self._engine),
                self._length)
        self._mirror.rebuild()

    # ------------------------------------------------------------------
    # per-edit machinery
    # ------------------------------------------------------------------
    def _fallback_threshold(self, n: int) -> int:
        if self._fallback_fraction == 0.0:
            return 0
        return max(16, int(n * self._fallback_fraction))

    def _removal_rows(self, du: np.ndarray, dv: np.ndarray) -> np.ndarray:
        """Rows that can change when the edge between the columns is removed.

        ``du`` / ``dv`` are the (pre-removal) int64 distance columns of the
        edge's endpoints.  A shortest ≤L path from ``i`` crossing the edge
        reaches one endpoint at distance ``d`` and the other at ``d + 1``
        with ``d ≤ L - 1``; rows violating either condition are untouched.
        """
        near = np.minimum(du, dv) <= self._length - 1
        return np.nonzero(near & (np.abs(du - dv) == 1))[0]

    def _rows_block(self, rows: np.ndarray) -> np.ndarray:
        """Recompute ``rows`` of the matrix on the current (edited) graph.

        Vectorized multi-source frontier expansion — the ``numpy`` engine's
        recurrence restricted to an ``|rows| × n`` slab, so the cost scales
        with the affected region instead of the whole vertex set.  Rows are
        independent sources, so oversized slabs stream through the row cap
        in chunks (bit-identical, workspace bounded).
        """
        cap = self._batch_slab_row_cap()
        if rows.size > cap:
            return np.concatenate(
                [self._rows_block_chunk(rows[start:start + cap])
                 for start in range(0, rows.size, cap)], axis=0)
        return self._rows_block_chunk(rows)

    def _rows_block_chunk(self, rows: np.ndarray) -> np.ndarray:
        n = self._graph.num_vertices
        sentinel = self._store.sentinel
        block = np.full((rows.size, n), sentinel, dtype=self._store.dtype)
        source_index = np.arange(rows.size)
        block[source_index, rows] = 0
        reached = np.zeros((rows.size, n), dtype=np.bool_)
        reached[source_index, rows] = True
        frontier = self._mirror.block(rows)
        step = 1
        while step <= self._length and frontier.any():
            new = frontier & ~reached
            block[new & (block == sentinel)] = step
            reached |= new
            if step == self._length:
                break
            frontier = self._mirror.expand(new) > 0
            step += 1
        return block

    def _relax_insertion(self, base: np.ndarray, du: np.ndarray,
                         dv: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """New values of ``rows`` after inserting the edge between the columns.

        ``base`` holds the pre-insertion values of ``rows``; only rows within
        L - 1 of an endpoint can gain a new ≤L path, and their new values
        follow from the single-edge relaxation (every improved shortest path
        is simple, so it crosses the new edge exactly once).  Oversized row
        sets stream through the row cap in chunks (rows are independent),
        bounding the int64 widening workspace.
        """
        cap = self._batch_slab_row_cap()
        if rows.size > cap:
            return np.concatenate(
                [self._relax_insertion_chunk(base[start:start + cap], du, dv,
                                             rows[start:start + cap])
                 for start in range(0, rows.size, cap)], axis=0)
        return self._relax_insertion_chunk(base, du, dv, rows)

    def _relax_insertion_chunk(self, base: np.ndarray, du: np.ndarray,
                               dv: np.ndarray, rows: np.ndarray) -> np.ndarray:
        block = base.astype(np.int64)
        np.minimum(block, (du[rows] + 1)[:, None] + dv[None, :], out=block)
        np.minimum(block, (dv[rows] + 1)[:, None] + du[None, :], out=block)
        block[block > self._length] = self._store.sentinel
        return block.astype(self._store.dtype)
