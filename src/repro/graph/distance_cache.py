"""Shared L_max distance computation for multi-L workloads.

A grid sweep that varies the path-length bound L re-evaluates the *same*
graph at several truncations.  The bounded-matrix contract
(:mod:`repro.graph.distance`) makes the per-L matrices redundant: for any
``L <= L_max`` the L-bounded matrix is a *monotone restriction* of the
L_max-bounded one — every cell holding a distance ``d <= L`` is the exact
geodesic distance (both truncations agree on it), and every other cell is
the unreachable sentinel by definition.  Truncating the L_max matrix at L
therefore reproduces ``bounded_distance_matrix(graph, L)`` bit for bit,
without running the engine again (DESIGN.md §10).

:func:`threshold_distances` performs that truncation;
:class:`LMaxDistanceCache` wraps it in a compute-once cache so an L-sweep
group pays for exactly one full distance computation at the group's maximum
L and derives every smaller-L matrix from it.  The cache is tier-aware
(DESIGN.md §13): under :class:`~repro.graph.distance_store.StoreConfig`
resolution it serves either dense matrices/:class:`DenseStore` wrappers or
per-L :class:`TiledStore` children of one shared L_max tiled base — the
same one-computation economics without ever materializing ``n × n``.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.distance import DistanceEngine, bounded_distance_matrix
from repro.graph.distance_store import (
    DenseStore,
    DistanceStore,
    StoreConfig,
    TiledStore,
)
from repro.graph.graph import Graph
from repro.graph.matrices import distance_dtype, unreachable_value

__all__ = ["LMaxDistanceCache", "threshold_distances"]


def threshold_distances(distances: np.ndarray, length_bound: int) -> np.ndarray:
    """Truncate an L_max-bounded distance matrix down to ``length_bound``.

    Returns a fresh matrix of ``distance_dtype(length_bound)`` with every
    value above ``length_bound`` (including cells already carrying the
    source matrix's sentinel) replaced by the *target* dtype's sentinel.
    When ``distances`` was produced by any engine with a bound
    ``L_max >= length_bound``, the result is bit-identical to
    ``bounded_distance_matrix(graph, length_bound)``: truncation at a
    smaller L is a monotone restriction of the L_max matrix (cells at most
    ``length_bound`` are exact geodesics under both bounds, everything else
    is unreachable by definition of the bounded-matrix contract).
    """
    if length_bound < 1:
        raise ConfigurationError(f"length_bound must be >= 1, got {length_bound}")
    target = distance_dtype(length_bound)
    # Values <= length_bound always fit the target dtype, and any source
    # sentinel is > length_bound (it is at least L_max + 1), so masking
    # before the cast keeps the conversion lossless.
    mask = distances > length_bound
    out = np.ascontiguousarray(distances).astype(target)
    out[mask] = unreachable_value(target)
    return out


class LMaxDistanceCache:
    """Serve per-L bounded distance matrices of one graph from one computation.

    The underlying engine runs once — lazily, at ``l_max`` — and every
    :meth:`matrix` call returns a *fresh* thresholded copy, so callers may
    hand the result to a :class:`~repro.graph.distance_delta.DistanceSession`
    (which mutates its matrix in place) without coordinating ownership.

    With a ``store_config`` resolving to the tiled tier, :meth:`store`
    serves :class:`TiledStore` children derived from one shared L_max tiled
    base instead — each child thresholds the base's tiles lazily, so the
    dense ``n × n`` footprint never exists and the group still pays for at
    most one logical distance computation.

    Parameters
    ----------
    graph:
        The graph whose distances are served.  The cache assumes the graph
        is not mutated for the cache's lifetime (sweep groups run against
        pristine samples and copy before editing).
    l_max:
        The largest L this cache can serve (the group's maximum).
    engine:
        Distance engine used for the single full computation (dense tier
        only; the tiled tier always expands CSR frontiers, which is
        bit-identical by the bounded-matrix contract).
    store_config:
        Scale-tier policy; defaults to ``auto`` under the default budget,
        which keeps every historical workload on the dense path.
    spill_path:
        Optional fixed spill-file path for the tiled tier's shared L_max
        base.  When given, the base store persists its warm tiles (and a
        sidecar index) at this path and re-adopts them on the next run —
        the cross-θ-group tile reuse of a resumed job (DESIGN.md §14).
    """

    def __init__(self, graph: Graph, l_max: int,
                 engine: DistanceEngine = "numpy",
                 store_config: Optional[StoreConfig] = None,
                 spill_path: Optional[str] = None) -> None:
        if l_max < 1:
            raise ConfigurationError(f"l_max must be >= 1, got {l_max}")
        self._graph = graph
        self._l_max = int(l_max)
        self._engine = engine
        self._store_config = store_config or StoreConfig()
        self._store_config.validate()
        self._spill_path = spill_path
        self._matrix: Optional[np.ndarray] = None
        self._base_store: Optional[TiledStore] = None
        #: Number of full engine computations performed (0 or 1); the
        #: bench/test hook asserting an L-sweep group pays exactly once.
        #: In the tiled tier, creating the shared L_max tile base counts as
        #: the one computation (its tiles stream lazily afterwards).
        self.compute_count = 0

    @classmethod
    def from_matrix(cls, graph: Graph, matrix: np.ndarray, l_max: int,
                    engine: DistanceEngine = "numpy",
                    store_config: Optional[StoreConfig] = None,
                    ) -> "LMaxDistanceCache":
        """Wrap an already-computed L_max matrix (zero-copy adoption).

        The shared-memory data plane attaches a worker-side cache directly
        onto the parent's published matrix: ``matrix`` (typically a
        *read-only* view of a shared segment) is adopted as-is — no engine
        run, no copy — and ``compute_count`` stays 0, so the per-grid
        compute counters keep reporting only real engine work.
        :meth:`matrix` calls threshold the shared view into fresh private
        copies exactly like the computed path, which is where ownership
        (and the single unavoidable copy) transfers to the caller.
        """
        n = graph.num_vertices
        if matrix.shape != (n, n):
            raise ConfigurationError(
                f"matrix shape {matrix.shape} does not match the graph's "
                f"{(n, n)}")
        cache = cls(graph, l_max, engine=engine, store_config=store_config)
        cache._matrix = matrix
        return cache

    @classmethod
    def from_tiled_base(cls, graph: Graph, base: TiledStore,
                        engine: DistanceEngine = "numpy",
                        store_config: Optional[StoreConfig] = None,
                        ) -> "LMaxDistanceCache":
        """Adopt a pre-built L_max tile base (the shm CSR-adoption path).

        Like :meth:`from_matrix`, adoption is free: ``compute_count`` stays
        0 and the base's lazily computed tiles are shared by every
        :meth:`store` child this cache hands out.
        """
        cache = cls(graph, base.length_bound, engine=engine,
                    store_config=store_config or StoreConfig(tier="tiled"))
        cache._base_store = base
        return cache

    @property
    def l_max(self) -> int:
        """The largest L this cache can serve."""
        return self._l_max

    @property
    def engine(self) -> DistanceEngine:
        """The engine used for the single full computation."""
        return self._engine

    @property
    def store_config(self) -> StoreConfig:
        """The scale-tier policy this cache resolves against."""
        return self._store_config

    @property
    def tier(self) -> str:
        """The concrete tier (``dense``/``tiled``) for this graph's matrix.

        Resolving an explicitly-dense config over budget raises
        :class:`~repro.errors.DistanceMemoryError` — the up-front memory
        guard fires here, before any allocation.
        """
        if self._matrix is not None or self._base_store is not None:
            # Adopted payloads fix the tier regardless of the auto rule.
            return "dense" if self._matrix is not None else "tiled"
        return self._store_config.resolve(self._graph.num_vertices,
                                          distance_dtype(self._l_max))

    def matrix(self, length_bound: int) -> np.ndarray:
        """A fresh ``length_bound``-truncated matrix (callers own the copy)."""
        self._check_bound(length_bound)
        return threshold_distances(self.base_matrix(), length_bound)

    def store(self, length_bound: int) -> DistanceStore:
        """A private store at ``length_bound``, in the resolved tier.

        Dense tier: a :class:`DenseStore` over the same fresh thresholded
        copy :meth:`matrix` returns.  Tiled tier: a :class:`TiledStore`
        child of the shared L_max base — no dense allocation anywhere.
        """
        self._check_bound(length_bound)
        if self.tier == "tiled":
            return self.base_store().thresholded(length_bound)
        return DenseStore(self.matrix(length_bound), length_bound)

    def base_matrix(self) -> np.ndarray:
        """The raw L_max matrix itself — computed at most once, never copied.

        Callers must treat the result as read-only: it backs every
        :meth:`matrix` threshold and, on the shared-memory plane, it is
        the very array the parent publishes into a segment (or a worker's
        read-only view of one).  Dense tier only — the memory guard in
        :attr:`tier` fires first when the matrix does not fit the budget.
        """
        if self._matrix is None:
            if self.tier == "tiled":
                raise ConfigurationError(
                    "base_matrix() is a dense-tier accessor; this cache "
                    "resolved to the tiled tier — use store()/base_store()")
            self._matrix = bounded_distance_matrix(self._graph, self._l_max,
                                                   engine=self._engine)
            self.compute_count += 1
        return self._matrix

    def base_store(self) -> TiledStore:
        """The shared read-only L_max tile base (tiled tier only)."""
        if self._base_store is None:
            config = self._store_config
            self._base_store = TiledStore(
                self._graph, self._l_max,
                tile_rows=config.tile_rows,
                budget_bytes=config.budget_bytes,
                spill_dir=config.spill_dir,
                spill_path=self._spill_path)
            self.compute_count += 1
        return self._base_store

    def _check_bound(self, length_bound: int) -> None:
        if not 1 <= length_bound <= self._l_max:
            raise ConfigurationError(
                f"length_bound must be in [1, {self._l_max}], got {length_bound}")
