"""Shared L_max distance computation for multi-L workloads.

A grid sweep that varies the path-length bound L re-evaluates the *same*
graph at several truncations.  The bounded-matrix contract
(:mod:`repro.graph.distance`) makes the per-L matrices redundant: for any
``L <= L_max`` the L-bounded matrix is a *monotone restriction* of the
L_max-bounded one — every cell holding a distance ``d <= L`` is the exact
geodesic distance (both truncations agree on it), and every other cell is
:data:`~repro.graph.matrices.UNREACHABLE` by definition.  Truncating the
L_max matrix at L therefore reproduces ``bounded_distance_matrix(graph, L)``
bit for bit, without running the engine again (DESIGN.md §10).

:func:`threshold_distances` performs that truncation;
:class:`LMaxDistanceCache` wraps it in a compute-once cache so an L-sweep
group pays for exactly one full distance computation at the group's maximum
L and derives every smaller-L matrix from it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.distance import DistanceEngine, bounded_distance_matrix
from repro.graph.graph import Graph
from repro.graph.matrices import UNREACHABLE

__all__ = ["LMaxDistanceCache", "threshold_distances"]


def threshold_distances(distances: np.ndarray, length_bound: int) -> np.ndarray:
    """Truncate an L_max-bounded distance matrix down to ``length_bound``.

    Returns a fresh ``int32`` matrix with every value above ``length_bound``
    (including cells already :data:`UNREACHABLE`) replaced by
    :data:`UNREACHABLE`.  When ``distances`` was produced by any engine with
    a bound ``L_max >= length_bound``, the result is bit-identical to
    ``bounded_distance_matrix(graph, length_bound)``: truncation at a
    smaller L is a monotone restriction of the L_max matrix (cells at most
    ``length_bound`` are exact geodesics under both bounds, everything else
    is unreachable by definition of the bounded-matrix contract).
    """
    if length_bound < 1:
        raise ConfigurationError(f"length_bound must be >= 1, got {length_bound}")
    out = np.ascontiguousarray(distances, dtype=np.int32).copy()
    out[out > length_bound] = UNREACHABLE
    return out


class LMaxDistanceCache:
    """Serve per-L bounded distance matrices of one graph from one computation.

    The underlying engine runs once — lazily, at ``l_max`` — and every
    :meth:`matrix` call returns a *fresh* thresholded copy, so callers may
    hand the result to a :class:`~repro.graph.distance_delta.DistanceSession`
    (which mutates its matrix in place) without coordinating ownership.

    Parameters
    ----------
    graph:
        The graph whose distances are served.  The cache assumes the graph
        is not mutated for the cache's lifetime (sweep groups run against
        pristine samples and copy before editing).
    l_max:
        The largest L this cache can serve (the group's maximum).
    engine:
        Distance engine used for the single full computation.
    """

    def __init__(self, graph: Graph, l_max: int,
                 engine: DistanceEngine = "numpy") -> None:
        if l_max < 1:
            raise ConfigurationError(f"l_max must be >= 1, got {l_max}")
        self._graph = graph
        self._l_max = int(l_max)
        self._engine = engine
        self._matrix: Optional[np.ndarray] = None
        #: Number of full engine computations performed (0 or 1); the
        #: bench/test hook asserting an L-sweep group pays exactly once.
        self.compute_count = 0

    @classmethod
    def from_matrix(cls, graph: Graph, matrix: np.ndarray, l_max: int,
                    engine: DistanceEngine = "numpy") -> "LMaxDistanceCache":
        """Wrap an already-computed L_max matrix (zero-copy adoption).

        The shared-memory data plane attaches a worker-side cache directly
        onto the parent's published matrix: ``matrix`` (typically a
        *read-only* view of a shared segment) is adopted as-is — no engine
        run, no copy — and ``compute_count`` stays 0, so the per-grid
        compute counters keep reporting only real engine work.
        :meth:`matrix` calls threshold the shared view into fresh private
        copies exactly like the computed path, which is where ownership
        (and the single unavoidable copy) transfers to the caller.
        """
        n = graph.num_vertices
        if matrix.shape != (n, n):
            raise ConfigurationError(
                f"matrix shape {matrix.shape} does not match the graph's "
                f"{(n, n)}")
        cache = cls(graph, l_max, engine=engine)
        cache._matrix = matrix
        return cache

    @property
    def l_max(self) -> int:
        """The largest L this cache can serve."""
        return self._l_max

    @property
    def engine(self) -> DistanceEngine:
        """The engine used for the single full computation."""
        return self._engine

    def matrix(self, length_bound: int) -> np.ndarray:
        """A fresh ``length_bound``-truncated matrix (callers own the copy)."""
        if not 1 <= length_bound <= self._l_max:
            raise ConfigurationError(
                f"length_bound must be in [1, {self._l_max}], got {length_bound}")
        return threshold_distances(self.base_matrix(), length_bound)

    def base_matrix(self) -> np.ndarray:
        """The raw L_max matrix itself — computed at most once, never copied.

        Callers must treat the result as read-only: it backs every
        :meth:`matrix` threshold and, on the shared-memory plane, it is
        the very array the parent publishes into a segment (or a worker's
        read-only view of one).
        """
        if self._matrix is None:
            self._matrix = bounded_distance_matrix(self._graph, self._l_max,
                                                   engine=self._engine)
            self.compute_count += 1
        return self._matrix
