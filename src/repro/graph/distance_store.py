"""Out-of-core distance plane: row-block stores behind one seam.

Every layer above the distance engines consumes the bounded matrix the same
way — ``|block| × n`` row slabs (the sessions' stacked passes, the opacity
tallies, the pruning gathers) — and the matrix is symmetric, so column
gathers are row gathers transposed.  :class:`DistanceStore` freezes that
contract: ``rows(block)`` returns a fresh slab, ``write_rows`` folds a
session delta back in symmetrically, and ``row_blocks()`` streams the
matrix in bounded chunks.  Two implementations cover the scale tiers:

* :class:`DenseStore` wraps today's dense ``n × n`` matrices unchanged —
  the fast tier for graphs whose matrix fits the byte budget.
* :class:`TiledStore` never materializes the matrix: it computes
  L-bounded distances one row tile at a time by CSR frontier expansion
  (the ``numpy`` engine's recurrence restricted to the tile's source
  rows — bit-identical values by the bounded-matrix contract), keeps an
  LRU tile cache under a configurable byte budget, and spills cold tiles
  to fixed slots of a temporary file.

:class:`StoreConfig` carries the ``scale_tier`` knob (``dense`` /
``tiled`` / ``auto``) and the byte budget through the config/request
layers; ``auto`` picks dense exactly when ``n² × itemsize`` fits the
budget, and an explicit ``dense`` request over budget raises
:class:`~repro.errors.DistanceMemoryError` up front instead of dying on
an opaque ``MemoryError`` mid-run (DESIGN.md §13).
"""

from __future__ import annotations

import os
import tempfile
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, DistanceMemoryError
from repro.graph.graph import Graph
from repro.graph.matrices import distance_dtype, unreachable_value

__all__ = [
    "SCALE_TIERS",
    "DEFAULT_SCALE_BUDGET_BYTES",
    "StoreConfig",
    "validate_scale_tier",
    "dense_matrix_bytes",
    "ensure_dense_fits",
    "CSRAdjacency",
    "csr_bounded_rows",
    "DistanceStore",
    "DenseStore",
    "TiledStore",
]

#: Valid values of the ``scale_tier`` knob, service layer included.
SCALE_TIERS: Tuple[str, ...] = ("dense", "tiled", "auto")

#: Default byte budget of the distance plane: dense matrices under this
#: footprint stay dense (tier ``auto``), and the tiled tier's LRU cache is
#: bounded by it.  512 MB keeps every historical workload on the dense
#: fast path while capping what a single sample may pin in RAM.
DEFAULT_SCALE_BUDGET_BYTES: int = 512 * 1024 * 1024


def validate_scale_tier(tier: str) -> None:
    """Raise :class:`ConfigurationError` unless ``tier`` is a known tier."""
    if tier not in SCALE_TIERS:
        raise ConfigurationError(
            f"unknown scale_tier {tier!r}; available: {SCALE_TIERS}")


def dense_matrix_bytes(num_vertices: int, dtype: np.dtype) -> int:
    """Footprint of a dense ``n × n`` matrix of ``dtype`` in bytes."""
    return int(num_vertices) * int(num_vertices) * np.dtype(dtype).itemsize


def ensure_dense_fits(num_vertices: int, dtype: np.dtype, budget_bytes: int,
                      context: str = "distance matrix") -> None:
    """Up-front guard for dense allocations against the byte budget."""
    need = dense_matrix_bytes(num_vertices, dtype)
    if need > budget_bytes:
        raise DistanceMemoryError(
            f"dense {context} needs {need} bytes "
            f"({num_vertices} x {num_vertices} x "
            f"{np.dtype(dtype).itemsize}B) but the scale budget is "
            f"{budget_bytes} bytes; rerun with scale_tier='tiled' "
            f"(--scale-tier tiled) to stream it through the tiled store, "
            f"or raise the budget")


@dataclass(frozen=True)
class StoreConfig:
    """How the distance plane of one run/sample is stored.

    ``tier`` is the user-facing ``scale_tier`` knob; ``budget_bytes`` both
    decides the ``auto`` tier and bounds the tiled tier's LRU cache.
    ``tile_rows`` (rows per tile) and ``spill_dir`` are expert overrides —
    the defaults derive a tile size so roughly eight tiles fit the budget.
    """

    tier: str = "auto"
    budget_bytes: int = DEFAULT_SCALE_BUDGET_BYTES
    tile_rows: Optional[int] = None
    spill_dir: Optional[str] = None

    def validate(self) -> None:
        validate_scale_tier(self.tier)
        if self.budget_bytes <= 0:
            raise ConfigurationError(
                f"budget_bytes must be positive, got {self.budget_bytes}")
        if self.tile_rows is not None and self.tile_rows < 1:
            raise ConfigurationError(
                f"tile_rows must be >= 1, got {self.tile_rows}")

    def resolve(self, num_vertices: int, dtype: np.dtype) -> str:
        """Concrete tier (``dense`` or ``tiled``) for one matrix.

        ``auto`` picks dense exactly when the matrix fits the budget; an
        explicit ``dense`` request that does not fit raises
        :class:`DistanceMemoryError` up front (the memory guard).
        """
        self.validate()
        if self.tier == "tiled":
            return "tiled"
        if self.tier == "dense":
            ensure_dense_fits(num_vertices, dtype, self.budget_bytes)
            return "dense"
        need = dense_matrix_bytes(num_vertices, dtype)
        return "dense" if need <= self.budget_bytes else "tiled"


# ----------------------------------------------------------------------
# CSR adjacency + frontier-expansion kernel
# ----------------------------------------------------------------------
class CSRAdjacency:
    """Immutable CSR snapshot of a graph's adjacency (both edge directions)."""

    __slots__ = ("indptr", "indices", "num_vertices")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.num_vertices = int(self.indptr.size - 1)

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRAdjacency":
        n = graph.num_vertices
        edges = np.fromiter((vertex for edge in graph.edges() for vertex in edge),
                            dtype=np.int64).reshape(-1, 2)
        if edges.size == 0:
            return cls(np.zeros(n + 1, dtype=np.int64),
                       np.empty(0, dtype=np.int64))
        src = np.concatenate([edges[:, 0], edges[:, 1]])
        dst = np.concatenate([edges[:, 1], edges[:, 0]])
        order = np.argsort(src, kind="stable")
        counts = np.bincount(src, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, dst[order])

    def gather(self, vertices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Neighbors of ``vertices``: ``(source positions, neighbor ids)``.

        ``source positions`` index into ``vertices`` (repeated per
        neighbor), so callers can scatter per-source contributions.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        starts = self.indptr[vertices]
        counts = self.indptr[vertices + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        bases = np.repeat(np.cumsum(counts) - counts, counts)
        offsets = np.repeat(starts, counts) + (np.arange(total) - bases)
        return np.repeat(np.arange(vertices.size), counts), self.indices[offsets]


def csr_bounded_rows(csr: CSRAdjacency, sources: np.ndarray, length_bound: int,
                     dtype: Optional[np.dtype] = None) -> np.ndarray:
    """L-bounded distance rows of ``sources`` by CSR frontier expansion.

    The ``numpy`` engine's recurrence restricted to an ``|sources| × n``
    slab, with the boolean matrix product replaced by an exact integer
    neighbor count (``bincount`` over the CSR gather) — the frontier
    booleans, and with them every distance value, match the dense engines
    bit for bit under the bounded-matrix contract.
    """
    n = csr.num_vertices
    dtype = distance_dtype(length_bound) if dtype is None else np.dtype(dtype)
    sentinel = unreachable_value(dtype)
    sources = np.asarray(sources, dtype=np.int64)
    block = np.full((sources.size, n), sentinel, dtype=dtype)
    if sources.size == 0:
        return block
    source_index = np.arange(sources.size)
    block[source_index, sources] = 0
    reached = np.zeros((sources.size, n), dtype=np.bool_)
    reached[source_index, sources] = True
    frontier = np.zeros((sources.size, n), dtype=np.bool_)
    rep, neighbors = csr.gather(sources)
    frontier[rep, neighbors] = True
    step = 1
    while step <= length_bound and frontier.any():
        new = frontier & ~reached
        block[new & (block == sentinel)] = step
        reached |= new
        if step == length_bound:
            break
        rows_idx, vertices = np.nonzero(new)
        rep, neighbors = csr.gather(vertices)
        counts = np.bincount(rows_idx[rep] * n + neighbors,
                             minlength=sources.size * n)
        frontier = counts.reshape(sources.size, n) > 0
        step += 1
    return block


# ----------------------------------------------------------------------
# the store seam
# ----------------------------------------------------------------------
class DistanceStore:
    """Row-block interface over one symmetric L-bounded distance matrix.

    The matrix is symmetric, so this interface is complete: column gathers
    are ``rows(cols).T`` and a delta commit is one symmetric
    :meth:`write_rows`.  ``rows`` always returns a *fresh* slab the caller
    may mutate; writes only go through :meth:`write_rows` /
    :meth:`replace`.
    """

    num_vertices: int
    length_bound: int
    dtype: np.dtype

    @property
    def sentinel(self) -> int:
        """The dtype-local unreachable sentinel of this store's values."""
        return unreachable_value(self.dtype)

    def rows(self, block: Sequence[int]) -> np.ndarray:
        """Fresh ``|block| × n`` slab of the given rows (any order, dups ok)."""
        raise NotImplementedError

    def write_rows(self, rows: np.ndarray, new_rows: np.ndarray) -> None:
        """Symmetric write: set ``D[rows, :] = new_rows`` and ``D[:, rows] = new_rows.T``."""
        raise NotImplementedError

    def replace(self, matrix: np.ndarray) -> None:
        """Adopt a full recomputed matrix (the from-scratch fallback path)."""
        raise NotImplementedError

    def row_blocks(self) -> Iterator[Tuple[int, int]]:
        """Contiguous ``(start, stop)`` row ranges for streaming consumers."""
        raise NotImplementedError

    def to_array(self) -> np.ndarray:
        """Materialize the full dense matrix (testing / small-n interop)."""
        raise NotImplementedError


class DenseStore(DistanceStore):
    """The dense tier: a thin adapter over today's ``n × n`` matrices."""

    def __init__(self, matrix: np.ndarray, length_bound: int) -> None:
        matrix = np.ascontiguousarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ConfigurationError(
                f"dense store needs a square matrix, got {matrix.shape}")
        self._matrix = matrix
        self.num_vertices = int(matrix.shape[0])
        self.length_bound = int(length_bound)
        self.dtype = matrix.dtype

    @property
    def array(self) -> np.ndarray:
        """The backing matrix itself (zero-copy; owned by this store)."""
        return self._matrix

    def rows(self, block: Sequence[int]) -> np.ndarray:
        return self._matrix[np.asarray(block, dtype=np.int64)]

    def write_rows(self, rows: np.ndarray, new_rows: np.ndarray) -> None:
        self._matrix[rows, :] = new_rows
        self._matrix[:, rows] = new_rows.T

    def replace(self, matrix: np.ndarray) -> None:
        self._matrix = matrix
        self.dtype = matrix.dtype

    def row_blocks(self) -> Iterator[Tuple[int, int]]:
        yield 0, self.num_vertices

    def to_array(self) -> np.ndarray:
        return self._matrix


class TiledStore(DistanceStore):
    """The out-of-core tier: lazy row tiles, LRU cache, temp-file spill.

    Tiles are computed on first touch from the graph's CSR snapshot (or,
    for a :meth:`thresholded` child, by per-tile truncation of the shared
    parent's tiles), held in an LRU dict bounded by ``budget_bytes``, and
    written to a fixed slot of a lazily-created temp file on eviction.
    After the first :meth:`write_rows` the store is *edited*: every tile is
    materialized once (the CSR snapshot no longer describes the mutating
    graph) and from then on tiles only move between cache and spill file.

    Counters (``tile_computes`` / ``tile_loads`` / ``tile_evictions`` /
    ``tile_spills``) are the observability hooks the differential suite and
    the scale benchmark assert against.
    """

    def __init__(self, graph: Optional[Graph], length_bound: int, *,
                 tile_rows: Optional[int] = None,
                 budget_bytes: int = DEFAULT_SCALE_BUDGET_BYTES,
                 spill_dir: Optional[str] = None,
                 spill_path: Optional[str] = None,
                 csr: Optional[CSRAdjacency] = None,
                 parent: Optional["TiledStore"] = None) -> None:
        if length_bound < 1:
            raise ConfigurationError(
                f"length_bound must be >= 1, got {length_bound}")
        if budget_bytes <= 0:
            raise ConfigurationError(
                f"budget_bytes must be positive, got {budget_bytes}")
        if parent is not None:
            if length_bound > parent.length_bound:
                raise ConfigurationError(
                    f"thresholded child bound {length_bound} exceeds the "
                    f"parent's {parent.length_bound}")
            self.num_vertices = parent.num_vertices
        else:
            if csr is None:
                if graph is None:
                    raise ConfigurationError(
                        "TiledStore needs a graph, a CSR snapshot, or a parent")
                csr = CSRAdjacency.from_graph(graph)
            self.num_vertices = csr.num_vertices
        self._csr = csr
        self._parent = parent
        self.length_bound = int(length_bound)
        self.dtype = distance_dtype(length_bound)
        n = self.num_vertices
        if tile_rows is None:
            row_bytes = max(1, n) * self.dtype.itemsize
            tile_rows = max(16, budget_bytes // (8 * row_bytes))
        self.tile_rows = max(1, min(int(tile_rows), max(1, n)))
        self.num_tiles = -(-n // self.tile_rows) if n else 0
        self._budget = int(budget_bytes)
        self._spill_dir = spill_dir
        self._cache: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._cache_bytes = 0
        self._on_disk = np.zeros(max(1, self.num_tiles), dtype=bool)
        self._edited = False
        self._spill_fd: Optional[int] = None
        self._spill_path: Optional[str] = None
        self._finalizer = None
        self._persistent = False
        self.tile_computes = 0
        self.tile_loads = 0
        self.tile_evictions = 0
        self.tile_spills = 0
        self.tile_reuses = 0
        if spill_path is not None:
            self._open_persistent_spill(spill_path)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Drop the tile cache and the spill file (persistent spills stay)."""
        self._cache.clear()
        self._cache_bytes = 0
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._spill_fd = None
        self._spill_path = None

    @staticmethod
    def _cleanup_spill(fd: int, path: str) -> None:
        try:
            os.close(fd)
        except OSError:
            pass
        try:
            os.unlink(path)
        except OSError:
            pass

    @staticmethod
    def _close_fd(fd: int) -> None:
        try:
            os.close(fd)
        except OSError:
            pass

    def _ensure_spill_file(self) -> int:
        if self._spill_fd is None:
            fd, path = tempfile.mkstemp(prefix="repro-tiles-",
                                        dir=self._spill_dir)
            self._spill_fd = fd
            self._spill_path = path
            self._finalizer = weakref.finalize(
                self, TiledStore._cleanup_spill, fd, path)
        return self._spill_fd

    # -- persistent spill (warm tiles across θ-groups / restarts) --------
    def _sidecar_path(self, path: str) -> str:
        return path + ".index.npz"

    def _open_persistent_spill(self, path: str) -> None:
        """Adopt ``path`` as a *persistent* spill file.

        Unlike the anonymous mkstemp spill — deleted with the store — a
        persistent spill survives :meth:`close`, and a valid sidecar index
        (geometry + which tile slots hold data) written next to it lets a
        later store over the same pristine matrix *reuse* the spilled
        tiles instead of recomputing them (``tile_reuses`` counts the
        adopted slots).  A geometry mismatch or missing sidecar truncates
        the file and starts fresh.  Only pristine base stores should be
        opened this way: the first edit retires persistence (the sidecar
        is removed) so stale distances can never leak into a later run.
        """
        fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o600)
        self._spill_fd = fd
        self._spill_path = path
        self._persistent = True
        self._finalizer = weakref.finalize(self, TiledStore._close_fd, fd)
        sidecar = self._sidecar_path(path)
        adopted = False
        try:
            with np.load(sidecar) as index:
                if (int(index["num_vertices"]) == self.num_vertices
                        and int(index["length_bound"]) == self.length_bound
                        and int(index["tile_rows"]) == self.tile_rows
                        and str(index["dtype"]) == self.dtype.str):
                    on_disk = np.asarray(index["on_disk"], dtype=bool)
                    if on_disk.shape == self._on_disk.shape:
                        self._on_disk = on_disk.copy()
                        self.tile_reuses = int(on_disk.sum())
                        adopted = True
        except (OSError, KeyError, ValueError):
            adopted = False
        if not adopted:
            try:
                os.ftruncate(fd, 0)
            except OSError:
                pass
            try:
                os.unlink(sidecar)
            except OSError:
                pass

    def _write_sidecar(self) -> None:
        sidecar = self._sidecar_path(self._spill_path)
        tmp = sidecar + ".tmp"
        with open(tmp, "wb") as handle:
            np.savez(handle,
                     num_vertices=self.num_vertices,
                     length_bound=self.length_bound,
                     tile_rows=self.tile_rows,
                     dtype=self.dtype.str,
                     on_disk=self._on_disk)
        os.replace(tmp, sidecar)

    def _retire_persistence(self) -> None:
        """Stop advertising the spill for reuse (first edit)."""
        if not self._persistent:
            return
        self._persistent = False
        try:
            os.unlink(self._sidecar_path(self._spill_path))
        except OSError:
            pass

    @property
    def spill_path(self) -> Optional[str]:
        """Path of the spill file, once one exists (observability hook)."""
        return self._spill_path

    @property
    def budget_bytes(self) -> int:
        """The LRU cache's byte budget."""
        return self._budget

    @property
    def spill_dir(self) -> Optional[str]:
        """Directory spill files are created in (``None`` = system tmp)."""
        return self._spill_dir

    def cache_bytes(self) -> int:
        """Bytes currently pinned by the LRU tile cache."""
        return self._cache_bytes

    def cached_tiles(self) -> Tuple[int, ...]:
        """Tile ids currently resident in the LRU cache, hottest last."""
        return tuple(self._cache)

    # -- tile machinery ------------------------------------------------
    def _tile_span(self, tile_id: int) -> Tuple[int, int]:
        start = tile_id * self.tile_rows
        return start, min(self.num_vertices, start + self.tile_rows)

    def _slot_bytes(self) -> int:
        return self.tile_rows * self.num_vertices * self.dtype.itemsize

    def _compute_tile(self, tile_id: int) -> np.ndarray:
        start, stop = self._tile_span(tile_id)
        sources = np.arange(start, stop, dtype=np.int64)
        if self._parent is not None:
            slab = self._parent.rows(sources)
            over = slab > self.length_bound
            tile = slab.astype(self.dtype)
            tile[over] = self.sentinel
            return tile
        return csr_bounded_rows(self._csr, sources, self.length_bound,
                                dtype=self.dtype)

    def _spill(self, tile_id: int, tile: np.ndarray) -> None:
        fd = self._ensure_spill_file()
        os.pwrite(fd, tile.tobytes(), tile_id * self._slot_bytes())
        self._on_disk[tile_id] = True
        self.tile_spills += 1
        if self._persistent:
            self._write_sidecar()

    def _load_spilled(self, tile_id: int) -> np.ndarray:
        start, stop = self._tile_span(tile_id)
        count = (stop - start) * self.num_vertices * self.dtype.itemsize
        data = os.pread(self._spill_fd, count, tile_id * self._slot_bytes())
        tile = np.frombuffer(bytearray(data), dtype=self.dtype)
        self.tile_loads += 1
        return tile.reshape(stop - start, self.num_vertices)

    def _insert(self, tile_id: int, tile: np.ndarray) -> None:
        while self._cache and self._cache_bytes + tile.nbytes > self._budget:
            victim, evicted = self._cache.popitem(last=False)
            self._cache_bytes -= evicted.nbytes
            self._spill(victim, evicted)
            self.tile_evictions += 1
        self._cache[tile_id] = tile
        self._cache_bytes += tile.nbytes

    def preload_tile(self, tile_id: int, tile: np.ndarray) -> None:
        """Seed one tile (e.g. a published hot tile from a shared arena)."""
        start, stop = self._tile_span(tile_id)
        if tile.shape != (stop - start, self.num_vertices):
            raise ConfigurationError(
                f"tile {tile_id} must be {(stop - start, self.num_vertices)}, "
                f"got {tile.shape}")
        if tile_id not in self._cache:
            self._insert(tile_id, np.ascontiguousarray(tile, dtype=self.dtype))

    def _tile(self, tile_id: int) -> np.ndarray:
        tile = self._cache.get(tile_id)
        if tile is not None:
            self._cache.move_to_end(tile_id)
            return tile
        if self._on_disk[tile_id]:
            tile = self._load_spilled(tile_id)
        else:
            tile = self._compute_tile(tile_id)
            self.tile_computes += 1
        self._insert(tile_id, tile)
        return tile

    def _materialize_all(self) -> None:
        """Force every tile into existence (cache or spill file).

        Called on the first write: lazily computing a tile from the CSR
        snapshot after the graph started mutating would be stale.
        """
        for tile_id in range(self.num_tiles):
            self._tile(tile_id)

    # -- DistanceStore interface ---------------------------------------
    def rows(self, block: Sequence[int]) -> np.ndarray:
        block = np.asarray(block, dtype=np.int64)
        out = np.empty((block.size, self.num_vertices), dtype=self.dtype)
        if block.size == 0:
            return out
        tile_ids = block // self.tile_rows
        for tile_id in np.unique(tile_ids):
            selector = tile_ids == tile_id
            tile = self._tile(int(tile_id))
            out[selector] = tile[block[selector] - int(tile_id) * self.tile_rows]
        return out

    def write_rows(self, rows: np.ndarray, new_rows: np.ndarray) -> None:
        if not self._edited:
            self._materialize_all()
            self._edited = True
            self._retire_persistence()
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return
        new_rows = np.ascontiguousarray(new_rows, dtype=self.dtype)
        tile_ids = rows // self.tile_rows
        for tile_id in range(self.num_tiles):
            start, stop = self._tile_span(tile_id)
            tile = self._tile(tile_id)
            # Transposed column update first, then the full row overwrite
            # for rows living in this tile — the same cell order as the
            # dense commit (row values win on the rows × rows overlap,
            # which is symmetric anyway).
            tile[:, rows] = new_rows[:, start:stop].T
            selector = tile_ids == tile_id
            if selector.any():
                tile[rows[selector] - start] = new_rows[selector]

    def replace(self, matrix: np.ndarray) -> None:
        if matrix.shape != (self.num_vertices, self.num_vertices):
            raise ConfigurationError(
                f"replacement matrix must be "
                f"{(self.num_vertices, self.num_vertices)}, got {matrix.shape}")
        self._edited = True
        self._retire_persistence()
        self._cache.clear()
        self._cache_bytes = 0
        self._on_disk[:] = False
        for tile_id in range(self.num_tiles):
            start, stop = self._tile_span(tile_id)
            self._insert(tile_id,
                         np.ascontiguousarray(matrix[start:stop],
                                              dtype=self.dtype))

    def row_blocks(self) -> Iterator[Tuple[int, int]]:
        for tile_id in range(self.num_tiles):
            yield self._tile_span(tile_id)

    def to_array(self) -> np.ndarray:
        out = np.empty((self.num_vertices, self.num_vertices), dtype=self.dtype)
        for start, stop in self.row_blocks():
            out[start:stop] = self._tile(start // self.tile_rows)
        return out

    def thresholded(self, length_bound: int, *,
                    tile_rows: Optional[int] = None,
                    budget_bytes: Optional[int] = None,
                    spill_dir: Optional[str] = None) -> "TiledStore":
        """A private child store truncated at ``length_bound``.

        Tiles are derived lazily by per-tile thresholding of this store's
        tiles (computed at most once here, shared by every child), so an
        L-sweep group keeps the dense tier's economics: one logical
        distance computation at the group's L_max serves every smaller L.
        The child owns its own LRU cache and spill file and is free to be
        edited by a session; this parent stays read-only.
        """
        child = TiledStore(
            None, length_bound, parent=self,
            tile_rows=self.tile_rows if tile_rows is None else tile_rows,
            budget_bytes=self._budget if budget_bytes is None else budget_bytes,
            spill_dir=self._spill_dir if spill_dir is None else spill_dir)
        return child
