"""Structural graph properties reported in the paper's Tables 2 and 3.

The paper summarizes every dataset with four statistics: diameter (longest
shortest path), average degree, standard deviation of the degrees (STDD),
and average clustering coefficient (ACC).  This module computes those plus a
few extras used by the utility metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.graph.distance import floyd_warshall
from repro.graph.graph import Graph
from repro.graph.matrices import UNREACHABLE


def average_degree(graph: Graph) -> float:
    """Mean vertex degree (2|E| / |V|)."""
    if graph.num_vertices == 0:
        return 0.0
    return 2.0 * graph.num_edges / graph.num_vertices


def degree_standard_deviation(graph: Graph) -> float:
    """Population standard deviation of the degree sequence (paper's STDD)."""
    if graph.num_vertices == 0:
        return 0.0
    return float(np.std(graph.degree_array()))


def local_clustering_coefficient(graph: Graph, vertex: int) -> float:
    """Local clustering coefficient of one vertex.

    Following the paper (Section 6.2): the number of edges among the
    neighbors of ``vertex`` divided by ``n_i * (n_i - 1)`` where ``n_i`` is
    the neighbor count; vertices with fewer than two neighbors have
    coefficient 0.
    """
    neighbors = list(graph.adjacency(vertex))
    count = len(neighbors)
    if count < 2:
        return 0.0
    links = 0
    neighbor_set = graph.adjacency(vertex)
    for i, u in enumerate(neighbors):
        # Count unordered neighbor pairs that are themselves connected.
        links += len(graph.adjacency(u) & neighbor_set)
    # Each edge among neighbors was counted twice (once from each endpoint).
    return links / (count * (count - 1))


def local_clustering_coefficients(graph: Graph) -> List[float]:
    """Local clustering coefficient of every vertex, indexed by vertex id."""
    return [local_clustering_coefficient(graph, v) for v in graph.vertices()]


def average_clustering_coefficient(graph: Graph) -> float:
    """Mean of the local clustering coefficients (paper's ACC)."""
    if graph.num_vertices == 0:
        return 0.0
    return float(np.mean(local_clustering_coefficients(graph)))


def diameter(graph: Graph) -> int:
    """Longest finite shortest-path length in the graph.

    For disconnected graphs (common in random samples) the diameter of the
    reachable pairs is reported, matching how the paper tabulates sampled
    graphs that are not necessarily connected.  Returns 0 for graphs with no
    reachable pairs.
    """
    if graph.num_vertices <= 1:
        return 0
    distances = floyd_warshall(graph)
    finite = distances[(distances != UNREACHABLE)]
    if finite.size == 0:
        return 0
    return int(finite.max())


def geodesic_histogram(graph: Graph) -> Dict[int, int]:
    """Histogram of geodesic distances over all vertex pairs.

    Unreachable pairs are counted under the key :data:`UNREACHABLE`.
    """
    distances = floyd_warshall(graph)
    n = graph.num_vertices
    upper = distances[np.triu_indices(n, k=1)]
    values, counts = np.unique(upper, return_counts=True)
    return {int(value): int(count) for value, count in zip(values, counts)}


@dataclass(frozen=True)
class GraphProperties:
    """The Table 2 / Table 3 property row for one graph."""

    num_vertices: int
    num_edges: int
    diameter: int
    average_degree: float
    degree_stddev: float
    average_clustering: float

    def as_dict(self) -> Dict[str, float]:
        """Return the properties as a plain dictionary."""
        return {
            "nodes": self.num_vertices,
            "links": self.num_edges,
            "diameter": self.diameter,
            "avg_degree": self.average_degree,
            "stdd": self.degree_stddev,
            "acc": self.average_clustering,
        }


def graph_properties(graph: Graph) -> GraphProperties:
    """Compute the full Table-2/3 style property row for ``graph``."""
    return GraphProperties(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        diameter=diameter(graph),
        average_degree=average_degree(graph),
        degree_stddev=degree_standard_deviation(graph),
        average_clustering=average_clustering_coefficient(graph),
    )
