"""A mutable simple undirected graph.

The anonymization heuristics of the paper repeatedly try removing and
inserting single edges, evaluate the resulting opacity, and revert the
change.  The :class:`Graph` type is therefore designed around O(1) edge
mutation, O(1) adjacency membership tests, and cheap snapshots of the edge
set.  Vertices are integers ``0 .. n-1`` so distance matrices and NumPy
adjacency exports can index directly by vertex id.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import GraphError, InvalidEdgeError

Edge = Tuple[int, int]


def normalize_edge(u: int, v: int) -> Edge:
    """Return the canonical (min, max) representation of an undirected edge."""
    if u == v:
        raise InvalidEdgeError(f"self-loops are not allowed: ({u}, {v})")
    return (u, v) if u < v else (v, u)


class Graph:
    """Simple undirected graph (no self-loops, no parallel edges).

    Parameters
    ----------
    num_vertices:
        Number of vertices; vertices are ``0 .. num_vertices - 1``.
    edges:
        Optional iterable of ``(u, v)`` pairs to add at construction time.

    Examples
    --------
    >>> g = Graph(4, edges=[(0, 1), (1, 2)])
    >>> g.has_edge(1, 0)
    True
    >>> g.degree(1)
    2
    """

    __slots__ = ("_num_vertices", "_adjacency", "_num_edges")

    def __init__(self, num_vertices: int, edges: Optional[Iterable[Edge]] = None) -> None:
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be non-negative, got {num_vertices}")
        self._num_vertices = int(num_vertices)
        self._adjacency: List[Set[int]] = [set() for _ in range(self._num_vertices)]
        self._num_edges = 0
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices in the graph."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Number of edges in the graph."""
        return self._num_edges

    def vertices(self) -> range:
        """Iterate over vertex ids ``0 .. n-1``."""
        return range(self._num_vertices)

    def neighbors(self, v: int) -> FrozenSet[int]:
        """Return the neighbor set of ``v`` as an immutable snapshot."""
        self._check_vertex(v)
        return frozenset(self._adjacency[v])

    def adjacency(self, v: int) -> Set[int]:
        """Return the live adjacency set of ``v`` (do not mutate)."""
        self._check_vertex(v)
        return self._adjacency[v]

    def degree(self, v: int) -> int:
        """Return the degree of vertex ``v``."""
        self._check_vertex(v)
        return len(self._adjacency[v])

    def degrees(self) -> List[int]:
        """Return the degree of every vertex, indexed by vertex id."""
        return [len(adj) for adj in self._adjacency]

    def degree_array(self) -> np.ndarray:
        """Return the degree sequence as a NumPy integer array."""
        return np.fromiter((len(adj) for adj in self._adjacency), dtype=np.int64,
                           count=self._num_vertices)

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if the edge ``{u, v}`` is present."""
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._adjacency[u]

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges in sorted canonical ``(u, v)`` order, ``u < v``.

        The order is a function of the edge *content* only, never of the
        mutation history.  Python sets iterate in a history-dependent order
        (deletions leave holes, table sizes depend on peak occupancy), and
        the greedy candidate scans draw tie-breaks from a seeded RNG in
        iteration order — a checkpoint-resumed pass rebuilds its adjacency
        sets from scratch and would silently diverge from the uninterrupted
        run if this order were left history-dependent.
        """
        for u in range(self._num_vertices):
            for v in sorted(self._adjacency[u]):
                if u < v:
                    yield (u, v)

    def edge_set(self) -> Set[Edge]:
        """Return a snapshot of the edge set (canonical tuples)."""
        return set(self.edges())

    def edge_list(self) -> List[Edge]:
        """Return a sorted list of edges (canonical tuples)."""
        return sorted(self.edges())

    def non_edges(self) -> Iterator[Edge]:
        """Iterate over all vertex pairs that are *not* edges (u < v)."""
        for u in range(self._num_vertices):
            adj = self._adjacency[u]
            for v in range(u + 1, self._num_vertices):
                if v not in adj:
                    yield (u, v)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> None:
        """Insert the edge ``{u, v}``.

        Raises
        ------
        InvalidEdgeError
            If the edge is a self-loop or already present.
        """
        u, v = normalize_edge(u, v)
        self._check_vertex(u)
        self._check_vertex(v)
        if v in self._adjacency[u]:
            raise InvalidEdgeError(f"edge ({u}, {v}) already present")
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._num_edges += 1

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the edge ``{u, v}``.

        Raises
        ------
        InvalidEdgeError
            If the edge is not present.
        """
        u, v = normalize_edge(u, v)
        self._check_vertex(u)
        self._check_vertex(v)
        if v not in self._adjacency[u]:
            raise InvalidEdgeError(f"edge ({u}, {v}) not present")
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        self._num_edges -= 1

    def add_edge_if_absent(self, u: int, v: int) -> bool:
        """Insert ``{u, v}`` if absent; return whether an insertion happened."""
        u, v = normalize_edge(u, v)
        if self.has_edge(u, v):
            return False
        self.add_edge(u, v)
        return True

    def remove_edge_if_present(self, u: int, v: int) -> bool:
        """Remove ``{u, v}`` if present; return whether a removal happened."""
        u, v = normalize_edge(u, v)
        if not self.has_edge(u, v):
            return False
        self.remove_edge(u, v)
        return True

    # ------------------------------------------------------------------
    # derived structures
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """Return a deep copy of this graph."""
        clone = Graph(self._num_vertices)
        clone._adjacency = [set(adj) for adj in self._adjacency]
        clone._num_edges = self._num_edges
        return clone

    def adjacency_matrix(self, dtype=np.bool_) -> np.ndarray:
        """Return the dense symmetric adjacency matrix of the graph."""
        n = self._num_vertices
        matrix = np.zeros((n, n), dtype=dtype)
        for u, v in self.edges():
            matrix[u, v] = True
            matrix[v, u] = True
        return matrix

    def subgraph(self, vertices: Sequence[int]) -> Tuple["Graph", Dict[int, int]]:
        """Return the induced subgraph on ``vertices`` plus the relabeling map.

        The returned mapping goes from the original vertex id to the id used
        in the new graph (ids are assigned in the order of ``vertices``).
        """
        mapping = {old: new for new, old in enumerate(dict.fromkeys(vertices))}
        sub = Graph(len(mapping))
        for old_u, new_u in mapping.items():
            for old_v in self._adjacency[old_u]:
                if old_v in mapping and old_u < old_v:
                    sub.add_edge(new_u, mapping[old_v])
        return sub, mapping

    def connected_components(self) -> List[List[int]]:
        """Return the connected components as lists of vertex ids."""
        seen = [False] * self._num_vertices
        components: List[List[int]] = []
        for start in range(self._num_vertices):
            if seen[start]:
                continue
            stack = [start]
            seen[start] = True
            component = []
            while stack:
                node = stack.pop()
                component.append(node)
                for neighbor in self._adjacency[node]:
                    if not seen[neighbor]:
                        seen[neighbor] = True
                        stack.append(neighbor)
            components.append(sorted(component))
        return components

    def is_connected(self) -> bool:
        """Return ``True`` if the graph has a single connected component."""
        if self._num_vertices == 0:
            return True
        return len(self.connected_components()) == 1

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (self._num_vertices == other._num_vertices
                and self.edge_set() == other.edge_set())

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("Graph objects are mutable and unhashable")

    def __len__(self) -> int:
        return self._num_vertices

    def __contains__(self, edge: Edge) -> bool:
        u, v = edge
        return self.has_edge(u, v)

    def __repr__(self) -> str:
        return f"Graph(num_vertices={self._num_vertices}, num_edges={self._num_edges})"

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_list(cls, edges: Iterable[Edge], num_vertices: Optional[int] = None) -> "Graph":
        """Build a graph from an edge list, inferring the vertex count if needed."""
        edge_list = [normalize_edge(u, v) for u, v in edges]
        if num_vertices is None:
            num_vertices = 1 + max((max(e) for e in edge_list), default=-1)
        graph = cls(num_vertices)
        for u, v in edge_list:
            graph.add_edge_if_absent(u, v)
        return graph

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------
    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._num_vertices:
            raise GraphError(
                f"vertex {v} out of range for graph with {self._num_vertices} vertices")
