"""Triangular matrices for geodesic distances.

The paper stores all-pairs geodesic distances in an upper-triangular matrix
(Section 5.1, Figure 4a).  :class:`TriangularMatrix` reproduces that storage
layout while also offering a dense NumPy view for the vectorized engines.
Distances that exceed the pruning threshold ``L`` or belong to mutually
unreachable pairs carry the sentinel :data:`UNREACHABLE`.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, Tuple

import numpy as np

#: Canonical sentinel for "no path of interest" (unreachable or pruned
#: beyond L).  Matrices narrower than int32 carry the dtype-local sentinel
#: :func:`unreachable_value` instead; histogram keys and any value crossing
#: a dtype boundary are normalized back to this canonical constant.
UNREACHABLE: int = np.iinfo(np.int32).max


def distance_dtype(length_bound: int) -> np.dtype:
    """Smallest unsigned/signed dtype holding every distance ≤ L plus a sentinel.

    A bounded matrix only ever stores values in ``{0, ..., L}`` plus one
    "unreachable" sentinel, so uint8 suffices for L ≤ 254 (sentinel 255) and
    uint16 for L ≤ 65534 — roughly 4x less RAM and ``/dev/shm`` than the
    historical int32 tier.  Bounds beyond uint16 (including the unbounded
    :data:`UNREACHABLE` pseudo-bound) keep int32, whose sentinel is the
    canonical :data:`UNREACHABLE`.
    """
    if length_bound <= np.iinfo(np.uint8).max - 1:
        return np.dtype(np.uint8)
    if length_bound <= np.iinfo(np.uint16).max - 1:
        return np.dtype(np.uint16)
    return np.dtype(np.int32)


def unreachable_value(dtype: np.dtype | type) -> int:
    """The dtype-local sentinel: the largest value the integer dtype holds.

    Every dtype produced by :func:`distance_dtype` reserves its maximum for
    the sentinel, so ``matrix <= L`` / ``matrix > L`` comparisons work
    unchanged and the sentinel is always at least ``L + 1``.
    """
    return int(np.iinfo(np.dtype(dtype)).max)


#: Largest matrix size whose triangle indices are worth pinning in memory
#: (each cached entry holds ~8·n² bytes); together with the bounded LRU this
#: caps the cache at a few tens of MB while covering every sampled size a
#:  sweep is realistically working on at once.
_TRIU_CACHE_MAX_N = 1024


def triu_pair_indices(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Cached ``np.triu_indices(n, k=1)`` — the (row, col) arrays of all pairs.

    Every opacity evaluation scans the strict upper triangle of an ``n x n``
    distance matrix, and a greedy run performs thousands of evaluations at a
    handful of distinct sizes; caching the index arrays removes their
    regeneration from the hot path.  The arrays are marked read-only — take a
    copy before mutating (boolean/fancy indexing already returns copies).
    Sizes beyond :data:`_TRIU_CACHE_MAX_N` are computed per call rather than
    pinned (the arrays would dwarf the distance matrix itself).
    """
    if n > _TRIU_CACHE_MAX_N:
        return np.triu_indices(n, k=1)
    return _cached_triu_pair_indices(n)


@lru_cache(maxsize=8)
def _cached_triu_pair_indices(n: int) -> Tuple[np.ndarray, np.ndarray]:
    rows, cols = np.triu_indices(n, k=1)
    rows.setflags(write=False)
    cols.setflags(write=False)
    return rows, cols


class TriangularMatrix:
    """Upper-triangular symmetric matrix over vertex pairs ``i < j``.

    Stores one ``int32`` per unordered pair in a flat array, the same
    information content as the triangular distance matrix of Figure 4a.
    """

    __slots__ = ("_n", "_data")

    def __init__(self, num_vertices: int, fill: int = UNREACHABLE) -> None:
        self._n = int(num_vertices)
        size = self._n * (self._n - 1) // 2
        self._data = np.full(size, fill, dtype=np.int32)

    @property
    def num_vertices(self) -> int:
        """Number of vertices indexed by this matrix."""
        return self._n

    def _index(self, i: int, j: int) -> int:
        if i == j:
            raise IndexError("diagonal entries (i == j) are not stored")
        if i > j:
            i, j = j, i
        if not 0 <= i < j < self._n:
            raise IndexError(f"pair ({i}, {j}) out of range for n={self._n}")
        # Row-major offset of the upper triangle excluding the diagonal.
        return i * (2 * self._n - i - 1) // 2 + (j - i - 1)

    def __getitem__(self, pair: Tuple[int, int]) -> int:
        i, j = pair
        return int(self._data[self._index(i, j)])

    def __setitem__(self, pair: Tuple[int, int], value: int) -> None:
        i, j = pair
        self._data[self._index(i, j)] = value

    def pairs(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(i, j, value)`` for every stored pair with ``i < j``."""
        for i in range(self._n):
            for j in range(i + 1, self._n):
                yield i, j, int(self._data[self._index(i, j)])

    def to_dense(self) -> np.ndarray:
        """Return a dense symmetric ``n x n`` matrix (diagonal = 0)."""
        dense = np.full((self._n, self._n), UNREACHABLE, dtype=np.int32)
        np.fill_diagonal(dense, 0)
        for i, j, value in self.pairs():
            dense[i, j] = value
            dense[j, i] = value
        return dense

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "TriangularMatrix":
        """Build a triangular matrix from a dense symmetric matrix."""
        n = dense.shape[0]
        matrix = cls(n)
        for i in range(n):
            for j in range(i + 1, n):
                matrix[i, j] = int(dense[i, j])
        return matrix

    def copy(self) -> "TriangularMatrix":
        """Return a deep copy of this matrix."""
        clone = TriangularMatrix(self._n)
        clone._data = self._data.copy()
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TriangularMatrix):
            return NotImplemented
        return self._n == other._n and bool(np.array_equal(self._data, other._data))

    def __repr__(self) -> str:
        return f"TriangularMatrix(num_vertices={self._n})"
