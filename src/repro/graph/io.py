"""Graph serialization: SNAP-style edge lists and plain dictionaries.

The SNAP datasets used in the paper ship as whitespace-separated edge lists
with ``#`` comment lines.  :func:`read_edge_list` accepts that format
directly (including directed lists, which are symmetrized, and arbitrary
node labels, which are relabeled to ``0..n-1``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.errors import DatasetError
from repro.graph.graph import Graph

PathLike = Union[str, Path]


def read_edge_list(path: PathLike, comments: str = "#") -> Tuple[Graph, Dict[str, int]]:
    """Read a whitespace-separated edge list into a :class:`Graph`.

    Node labels may be arbitrary strings; they are relabeled to consecutive
    integer ids in order of first appearance.  Self-loops and duplicate
    (or reverse-duplicate) edges are dropped, so directed SNAP lists load as
    simple undirected graphs.

    Returns
    -------
    (graph, labels)
        ``labels`` maps the original node label to the assigned vertex id.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"edge list not found: {path}")
    labels: Dict[str, int] = {}
    edges: List[Tuple[int, int]] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(comments):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise DatasetError(f"{path}:{line_number}: expected two columns, got {line!r}")
            source, target = parts[0], parts[1]
            if source == target:
                continue
            for label in (source, target):
                if label not in labels:
                    labels[label] = len(labels)
            edges.append((labels[source], labels[target]))
    graph = Graph(len(labels))
    for u, v in edges:
        graph.add_edge_if_absent(u, v)
    return graph, labels


def write_edge_list(graph: Graph, path: PathLike, header: str = "") -> None:
    """Write the graph as a whitespace-separated edge list."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# nodes: {graph.num_vertices} edges: {graph.num_edges}\n")
        for u, v in graph.edge_list():
            handle.write(f"{u}\t{v}\n")


def graph_to_dict(graph: Graph) -> Dict[str, object]:
    """Return a JSON-serializable representation of the graph."""
    return {
        "num_vertices": graph.num_vertices,
        "edges": [list(edge) for edge in graph.edge_list()],
    }


def graph_from_dict(payload: Dict[str, object]) -> Graph:
    """Rebuild a graph from :func:`graph_to_dict` output."""
    try:
        num_vertices = int(payload["num_vertices"])  # type: ignore[arg-type]
        edges = [(int(u), int(v)) for u, v in payload["edges"]]  # type: ignore[union-attr]
    except (KeyError, TypeError, ValueError) as exc:
        raise DatasetError(f"malformed graph payload: {exc}") from exc
    return Graph(num_vertices, edges=edges)


def save_graph_json(graph: Graph, path: PathLike) -> None:
    """Save a graph as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(graph_to_dict(graph), handle)


def load_graph_json(path: PathLike) -> Graph:
    """Load a graph saved by :func:`save_graph_json`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"graph JSON not found: {path}")
    with path.open("r", encoding="utf-8") as handle:
        return graph_from_dict(json.load(handle))
