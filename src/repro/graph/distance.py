"""All-pairs geodesic-distance engines, truncated at a path-length bound L.

The L-opacity computation (paper Algorithm 1) only needs to know, for every
vertex pair, whether its geodesic distance is at most ``L`` — and, if so, the
exact value.  This module provides several interchangeable engines that all
return the same *bounded distance matrix*:

* ``floyd_warshall`` — the textbook O(|V|^3) algorithm (exact distances for
  every pair), usable as an oracle and for unbounded distances.
* ``l_pruned_floyd_warshall`` — the paper's Algorithm 2: Floyd–Warshall with
  pruning of any relaxation that cannot produce a distance ≤ L.
* ``pointer_l_pruned_floyd_warshall`` — the paper's Algorithm 3: the same
  pruned recurrence, but driven by per-vertex shortlists of cells whose value
  is already < L, so rows/columns are never re-scanned.
* ``bfs_bounded_distances`` — breadth-first search from every vertex, cut off
  at depth L (fast for sparse graphs).
* ``numpy_bounded_distances`` — vectorized frontier expansion with boolean
  matrix products (fast for the graph sizes used in the experiments).

Contract shared by every engine: the returned matrix ``D`` is a dense
integer array of :func:`~repro.graph.matrices.distance_dtype` (uint8 for
L ≤ 254, uint16 up to 65534, int32 beyond) with ``D[i, i] = 0``,
``D[i, j]`` equal to the geodesic distance when that distance is ≤ L, and
the dtype-local sentinel :func:`~repro.graph.matrices.unreachable_value`
otherwise (the canonical :data:`UNREACHABLE` for int32 matrices).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.graph import Graph
from repro.graph.matrices import (
    UNREACHABLE,
    distance_dtype,
    triu_pair_indices,
    unreachable_value,
)

#: Registry of engine name -> callable(graph, L) -> dense bounded distance matrix.
_ENGINES: Dict[str, Callable[[Graph, int], np.ndarray]] = {}

DistanceEngine = str


def _register(name: str) -> Callable[[Callable[[Graph, int], np.ndarray]],
                                     Callable[[Graph, int], np.ndarray]]:
    def decorator(func: Callable[[Graph, int], np.ndarray]) -> Callable[[Graph, int], np.ndarray]:
        _ENGINES[name] = func
        return func

    return decorator


def available_engines() -> Tuple[str, ...]:
    """Return the names of all registered distance engines."""
    return tuple(sorted(_ENGINES))


def bounded_distance_matrix(graph: Graph, length_bound: int,
                            engine: DistanceEngine = "numpy") -> np.ndarray:
    """Compute the L-bounded distance matrix of ``graph`` with the given engine.

    Parameters
    ----------
    graph:
        The input graph.
    length_bound:
        The maximum path length L of interest; longer distances are reported
        as :data:`UNREACHABLE`.
    engine:
        One of :func:`available_engines` (default ``"numpy"``).
    """
    if length_bound < 1:
        raise ConfigurationError(f"length_bound must be >= 1, got {length_bound}")
    try:
        func = _ENGINES[engine]
    except KeyError:
        raise ConfigurationError(
            f"unknown distance engine {engine!r}; available: {available_engines()}")
    return func(graph, length_bound)


def _empty_matrix(num_vertices: int, length_bound: int = UNREACHABLE) -> np.ndarray:
    dtype = distance_dtype(length_bound)
    matrix = np.full((num_vertices, num_vertices), unreachable_value(dtype),
                     dtype=dtype)
    np.fill_diagonal(matrix, 0)
    return matrix


def _adjacency_distances(graph: Graph, length_bound: int = UNREACHABLE) -> np.ndarray:
    matrix = _empty_matrix(graph.num_vertices, length_bound)
    for u, v in graph.edges():
        matrix[u, v] = 1
        matrix[v, u] = 1
    return matrix


# ----------------------------------------------------------------------
# Plain Floyd–Warshall (exact, unbounded)
# ----------------------------------------------------------------------
@_register("floyd-warshall")
def floyd_warshall(graph: Graph, length_bound: int = UNREACHABLE) -> np.ndarray:
    """Exact all-pairs shortest paths, truncated to ``length_bound`` on output.

    The relaxation itself is not pruned; distances larger than the bound are
    replaced by :data:`UNREACHABLE` at the end so the output satisfies the
    bounded-matrix contract.
    """
    n = graph.num_vertices
    dtype = distance_dtype(length_bound)
    sentinel = unreachable_value(dtype)
    dist = _adjacency_distances(graph, length_bound).astype(np.float64)
    dist[dist == sentinel] = np.inf
    for k in range(n):
        # Vectorized relaxation of the classic triple loop.
        through_k = dist[:, k:k + 1] + dist[k:k + 1, :]
        np.minimum(dist, through_k, out=dist)
    out = np.where(np.isinf(dist) | (dist > length_bound), sentinel, dist)
    return out.astype(dtype)


# ----------------------------------------------------------------------
# Algorithm 2: L-pruned Floyd–Warshall
# ----------------------------------------------------------------------
@_register("l-pruned-fw")
def l_pruned_floyd_warshall(graph: Graph, length_bound: int) -> np.ndarray:
    """The paper's Algorithm 2: Floyd–Warshall pruned at path length L.

    Relaxations through an intermediate vertex ``k`` are only attempted when
    both legs are strictly shorter than L and their sum does not exceed L,
    exactly as in the published pseudo-code.
    """
    n = graph.num_vertices
    dist = _adjacency_distances(graph, length_bound)
    for k in range(n):
        row_k = dist[k]
        for i in range(n - 1):
            # Python-int arithmetic: narrow unsigned dtypes would wrap on
            # sums of two near-L legs (254 + 254 overflows uint8).
            d_ik = int(row_k[i])
            if i == k or d_ik >= length_bound:
                continue
            for j in range(i + 1, n):
                if j == k:
                    continue
                d_kj = int(row_k[j])
                if d_kj >= length_bound:
                    continue
                candidate = d_ik + d_kj
                if candidate <= length_bound and candidate < dist[i, j]:
                    dist[i, j] = candidate
                    dist[j, i] = candidate
    dist[dist > length_bound] = unreachable_value(dist.dtype)
    np.fill_diagonal(dist, 0)
    return dist


# ----------------------------------------------------------------------
# Algorithm 3: pointer-based L-pruned Floyd–Warshall
# ----------------------------------------------------------------------
@_register("pointer-fw")
def pointer_l_pruned_floyd_warshall(graph: Graph, length_bound: int) -> np.ndarray:
    """The paper's Algorithm 3: pruned Floyd–Warshall driven by shortlists.

    Instead of re-scanning row and column ``k`` of the triangular matrix at
    every iteration, the algorithm keeps, for every vertex ``k``, the list of
    cells on row/column ``k`` whose value is already strictly below L (the
    linked lists of the paper).  The shortlist is amended whenever a
    relaxation creates a new cell with value below L, so the scans of
    Algorithm 2 are avoided.
    """
    n = graph.num_vertices
    dist = _adjacency_distances(graph, length_bound)
    # short[k] maps a vertex x to dist[k, x] for every cell with value < L.
    # This is the linked-list content of Algorithm 3 in dictionary form.
    short: list[Dict[int, int]] = [dict() for _ in range(n)]
    for u, v in graph.edges():
        if 1 < length_bound:
            short[u][v] = 1
            short[v][u] = 1
    for k in range(n):
        # Snapshot: Algorithm 3 walks the list as it existed when the k-loop
        # entered; newly created cells incident to k become visible to later
        # values of k through their own shortlists.
        cells = list(short[k].items())
        for idx_out, (out_vertex, out_value) in enumerate(cells):
            for in_vertex, in_value in cells[idx_out + 1:]:
                candidate = out_value + in_value
                if candidate > length_bound:
                    continue
                current = int(dist[out_vertex, in_vertex])
                if candidate < current:
                    dist[out_vertex, in_vertex] = candidate
                    dist[in_vertex, out_vertex] = candidate
                    if candidate < length_bound:
                        # "update connections of cell new": the new short cell
                        # becomes reachable from both endpoints' lists.
                        short[out_vertex][in_vertex] = candidate
                        short[in_vertex][out_vertex] = candidate
                    elif current < length_bound:
                        short[out_vertex].pop(in_vertex, None)
                        short[in_vertex].pop(out_vertex, None)
    dist[dist > length_bound] = unreachable_value(dist.dtype)
    np.fill_diagonal(dist, 0)
    return dist


# ----------------------------------------------------------------------
# BFS engine
# ----------------------------------------------------------------------
@_register("bfs")
def bfs_bounded_distances(graph: Graph, length_bound: int) -> np.ndarray:
    """Breadth-first search from every vertex, truncated at depth L."""
    n = graph.num_vertices
    dist = _empty_matrix(n, length_bound)
    for source in range(n):
        queue = deque([source])
        level = {source: 0}
        while queue:
            node = queue.popleft()
            depth = level[node]
            if depth >= length_bound:
                continue
            for neighbor in graph.adjacency(node):
                if neighbor not in level:
                    level[neighbor] = depth + 1
                    dist[source, neighbor] = depth + 1
                    queue.append(neighbor)
    return dist


# ----------------------------------------------------------------------
# NumPy frontier-expansion engine
# ----------------------------------------------------------------------
@_register("numpy")
def numpy_bounded_distances(graph: Graph, length_bound: int) -> np.ndarray:
    """Vectorized L-bounded distances via boolean frontier expansion.

    ``reached`` accumulates pairs within distance ``step``; the new frontier
    at each step is ``frontier @ adjacency`` minus everything already
    reached.  The loop runs at most L times, so the cost is L boolean matrix
    products — very fast for the graph sizes used in the paper's sampled
    experiments.
    """
    n = graph.num_vertices
    dist = _empty_matrix(n, length_bound)
    sentinel = unreachable_value(dist.dtype)
    if n == 0 or graph.num_edges == 0:
        return dist
    # float32 keeps the 0/1 products exact up to 2**24 neighbors (a uint8
    # accumulator would wrap at 256) and routes the product through BLAS.
    adjacency = graph.adjacency_matrix(dtype=np.float32)
    reached = np.eye(n, dtype=np.bool_)
    frontier = adjacency.astype(np.bool_)
    step = 1
    while step <= length_bound and frontier.any():
        new = frontier & ~reached
        dist[new & (dist == sentinel)] = step
        reached |= new
        if step == length_bound:
            break
        frontier = (new.astype(np.float32) @ adjacency) > 0
        step += 1
    return dist


def pairwise_distance_histogram(distances: np.ndarray) -> Dict[int, int]:
    """Count vertex pairs by distance value (ignoring the diagonal).

    Unreachable / pruned pairs are reported under the key
    :data:`UNREACHABLE` regardless of the matrix dtype: narrow matrices
    carry a dtype-local sentinel, which is normalized back to the canonical
    key so histogram consumers (distribution metrics, EMD) never see a
    dtype-dependent value.
    """
    n = distances.shape[0]
    sentinel = unreachable_value(distances.dtype)
    upper = distances[triu_pair_indices(n)]
    values, counts = np.unique(upper, return_counts=True)
    return {(UNREACHABLE if int(value) == sentinel else int(value)): int(count)
            for value, count in zip(values, counts)}
