"""Command-line interface for the L-opacity reproduction.

Subcommands
-----------
* ``anonymize`` — anonymize an edge-list file (or a built-in dataset sample)
  with any registered algorithm and write the result.
* ``sweep`` — run a multi-axis grid (θ and algorithms via flags; dataset,
  size, seed, L, look-ahead via repeatable ``--axis name=v1,v2``) as
  grouped checkpointed passes with shared sample/distance caches: one
  anonymization per θ group, one sample load and one L_max distance
  computation per sample group.
* ``batch`` — execute a JSON job spec of anonymization requests, fanning
  the jobs across worker processes.
* ``serve`` — run the anonymization service: an HTTP job API
  (``POST /jobs`` and friends) over a persistent SQLite run store that
  dedups identical requests and resumes interrupted grids from their last
  persisted checkpoint after a restart.
* ``opacity`` — report the L-opacity of a graph for a given L.
* ``tables`` — print the reproduction of Tables 1-3.
* ``figure`` — compute one figure's series and print it.

Examples
--------
::

    repro-lopacity opacity --dataset gnutella --size 100 --length 2
    repro-lopacity anonymize --dataset google --size 60 --algorithm rem \
        --theta 0.5 --length 1 --output anonymized.edges
    repro-lopacity anonymize --dataset enron --size 80 --algorithm rem-ins \
        --timeout 30 --progress
    repro-lopacity sweep --dataset gnutella --size 60 \
        --algorithms rem rem-ins --thetas 0.9 0.8 0.7 0.6 0.5
    repro-lopacity sweep --dataset google --size 50 --sweep-mode independent
    repro-lopacity sweep --axis dataset=gnutella,google --axis l=1,2 \
        --thetas 0.9 0.7 0.5
    repro-lopacity batch jobs.json --max-workers 4 --output results.json
    repro-lopacity tables
    repro-lopacity figure --name fig6 --dataset google --size 50

A batch job spec is either a JSON array of request objects, or an object
with ``defaults`` merged into every job::

    {
      "defaults": {"dataset": "gnutella", "sample_size": 60, "theta": 0.5},
      "max_workers": 4,
      "jobs": [
        {"algorithm": "rem"},
        {"algorithm": "rem-ins", "insertion_candidate_cap": 100},
        {"algorithm": "gaded-max"},
        {"algorithm": "rem", "length_threshold": 2, "theta": 0.7}
      ]
    }

Each job object takes the fields of
:class:`repro.api.AnonymizationRequest` (``algorithm``, ``dataset`` +
``sample_size`` or ``edges``, ``theta``, ``length_threshold``,
``lookahead``, ``seed``, ``engine``, ``max_steps``,
``insertion_candidate_cap``, ``timeout_seconds``, ``include_utility``,
``request_id``).  Results are written as a JSON array of response objects
in job order; a failing job yields an ``error`` response without aborting
the rest of the batch.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.api import (
    AnonymizationRequest,
    BatchRunner,
    ConsoleProgressObserver,
    anonymize as api_anonymize,
    available_algorithms,
)
from repro.core.anonymizer import SWEEP_MODES
from repro.core.opacity_session import EVALUATION_MODES, SCAN_MODES
from repro.graph.distance_store import SCALE_TIERS
from repro.datasets import dataset_names
from repro.errors import ReproError
from repro.experiments import (
    ExperimentRunner,
    figure6_series,
    figure7_series,
    figure8_series,
    figure10_series,
    format_series,
    format_table,
    render_series_chart,
    table1_rows,
    table2_rows,
    table3_rows,
)
from repro.graph.io import read_edge_list, write_edge_list


def _cmd_opacity(args: argparse.Namespace) -> int:
    from repro.api import compute_opacity

    if args.input:
        graph, _labels = read_edge_list(args.input)
        request = AnonymizationRequest(edges=tuple(graph.edges()),
                                       num_vertices=graph.num_vertices,
                                       length_threshold=args.length)
    else:
        request = AnonymizationRequest(dataset=args.dataset, sample_size=args.size,
                                       seed=args.seed, length_threshold=args.length)
    report = compute_opacity(request)
    print(f"vertices={report.num_vertices} edges={report.num_edges}")
    print(f"L={args.length} max L-opacity={report.max_opacity:.4f} "
          f"types at max={report.types_at_max}")
    for type_key, within, total, opacity in report.worst_types:
        print(f"  type {type_key}: {within}/{total} = {opacity:.3f}")
    return 0


def _request_from_args(args: argparse.Namespace) -> AnonymizationRequest:
    """Build the service-layer request described by the CLI arguments."""
    common = dict(
        algorithm=args.algorithm,
        theta=args.theta,
        length_threshold=args.length,
        lookahead=args.lookahead,
        seed=args.seed,
        evaluation_mode=args.evaluation_mode,
        scan_mode=args.scan_mode,
        scan_workers=args.scan_workers,
        insertion_candidate_cap=args.insertion_cap,
        timeout_seconds=args.timeout,
        include_utility=True,
    )
    if args.input:
        graph, _labels = read_edge_list(args.input)
        return AnonymizationRequest(edges=tuple(graph.edges()),
                                    num_vertices=graph.num_vertices, **common)
    return AnonymizationRequest(dataset=args.dataset, sample_size=args.size, **common)


def _cmd_anonymize(args: argparse.Namespace) -> int:
    request = _request_from_args(args)
    observer = ConsoleProgressObserver() if args.progress else None
    response = api_anonymize(request, observer=observer)
    metrics = response.metrics or {}
    print(response.summary())
    print(f"degree EMD={metrics.get('degree_emd', 0.0):.4f} "
          f"geodesic EMD={metrics.get('geodesic_emd', 0.0):.4f} "
          f"mean |dCC|={metrics.get('mean_cc_diff', 0.0):.4f}")
    if args.output:
        write_edge_list(response.anonymized_graph(), args.output,
                        header=f"L-opaque graph (L={args.length}, theta={args.theta})")
        print(f"wrote {args.output}")
    return 0 if response.success else 1


#: ``--axis`` spellings -> (GridRequest axis name, value parser).
_AXIS_ALIASES = {
    "dataset": ("dataset", str),
    "size": ("sample_size", int),
    "sample_size": ("sample_size", int),
    "algorithm": ("algorithm", str),
    "l": ("length_threshold", int),
    "length": ("length_threshold", int),
    "lookahead": ("lookahead", int),
    "seed": ("seed", int),
    "theta": ("theta", float),
}


def _parse_axes(specs: List[str]) -> dict:
    """Parse repeated ``--axis name=v1,v2,...`` options into a grid-axis dict."""
    axes: dict = {}
    for spec in specs:
        name, separator, raw = spec.partition("=")
        key = name.strip().lower()
        if not separator or key not in _AXIS_ALIASES:
            raise ReproError(
                f"bad --axis {spec!r}; expected name=v1,v2,... with name in "
                f"{sorted(_AXIS_ALIASES)}")
        field, cast = _AXIS_ALIASES[key]
        try:
            values = tuple(cast(piece.strip()) for piece in raw.split(",")
                           if piece.strip())
        except ValueError as exc:
            raise ReproError(f"bad --axis value in {spec!r}: {exc}") from exc
        if not values:
            raise ReproError(f"--axis {spec!r} lists no values")
        if field == "dataset":
            unknown = sorted(set(values) - set(dataset_names()))
            if unknown:
                raise ReproError(f"unknown dataset(s) {unknown} in --axis "
                                 f"{spec!r}; known: {list(dataset_names())}")
        elif field == "algorithm":
            unknown = sorted(set(values) - set(available_algorithms()))
            if unknown:
                raise ReproError(
                    f"unknown algorithm(s) {unknown} in --axis {spec!r}; "
                    f"known: {list(available_algorithms())}")
        if field in axes:
            raise ReproError(
                f"--axis {spec!r} repeats axis {field!r}; list every value "
                f"in one option (name=v1,v2,...)")
        axes[field] = values
    return axes


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.api import GridRequest, run_grid

    axes = _parse_axes(args.axis or [])
    common = dict(
        theta=args.thetas[0],
        length_threshold=args.length,
        lookahead=args.lookahead,
        seed=args.seed,
        evaluation_mode=args.evaluation_mode,
        scan_mode=args.scan_mode,
        scan_workers=args.scan_workers,
        insertion_candidate_cap=args.insertion_cap,
        include_utility=not args.no_utility,
        scale_tier=args.scale_tier,
        scale_budget_bytes=(args.scale_budget_mb * 1024 * 1024
                            if args.scale_budget_mb is not None else None),
    )
    if args.input:
        graph, _labels = read_edge_list(args.input)
        base = AnonymizationRequest(edges=tuple(graph.edges()),
                                    num_vertices=graph.num_vertices, **common)
    else:
        base = AnonymizationRequest(dataset=args.dataset, sample_size=args.size,
                                    **common)
    # Flags provide the algorithm/θ axes; explicit --axis entries win.
    axes.setdefault("algorithm", tuple(args.algorithms))
    axes.setdefault("theta", tuple(args.thetas))
    request = GridRequest.from_axes(
        base,
        datasets=axes.get("dataset"),
        sample_sizes=axes.get("sample_size"),
        algorithms=axes.get("algorithm"),
        length_thresholds=axes.get("length_threshold"),
        lookaheads=axes.get("lookahead"),
        seeds=axes.get("seed"),
        thetas=axes.get("theta"),
        sweep_mode=args.sweep_mode)
    response = run_grid(request, max_workers=args.max_workers,
                        shared_memory=args.shared_memory == "on")
    print(f"{len(request.requests)} runs in {response.num_groups} group(s) "
          f"over {response.num_sample_groups} sample group(s), "
          f"sweep_mode={response.sweep_mode}")
    for entry in response.responses:
        print(entry.summary())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(response.to_dict(), handle, indent=2)
        print(f"wrote {args.output}")
    return 0 if response.ok else 1


def _load_batch_spec(path: str) -> tuple:
    """Read a job-spec file; returns ``(requests, max_workers_from_spec)``."""
    try:
        if path == "-":
            payload = json.load(sys.stdin)
        else:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
    except OSError as exc:
        raise ReproError(f"cannot read batch spec {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"batch spec {path!r} is not valid JSON: {exc}") from exc
    if isinstance(payload, list):
        defaults, jobs, max_workers = {}, payload, None
    elif isinstance(payload, dict):
        defaults = payload.get("defaults", {})
        jobs = payload.get("jobs", [])
        max_workers = payload.get("max_workers")
    else:
        raise ReproError("batch spec must be a JSON array of jobs or an object "
                         "with a 'jobs' array")
    if not isinstance(defaults, dict):
        raise ReproError(f"'defaults' must be an object, got {type(defaults).__name__}")
    if not isinstance(jobs, list) or not jobs:
        raise ReproError("batch spec contains no jobs")
    if max_workers is not None and (not isinstance(max_workers, int)
                                    or isinstance(max_workers, bool)
                                    or max_workers < 0):
        raise ReproError(f"'max_workers' must be a non-negative integer, "
                         f"got {max_workers!r}")
    requests = []
    for index, job in enumerate(jobs):
        if not isinstance(job, dict):
            raise ReproError(f"job {index} must be an object, got {type(job).__name__}")
        requests.append(AnonymizationRequest.from_dict({**defaults, **job}))
    return requests, max_workers


def _cmd_batch(args: argparse.Namespace) -> int:
    requests, spec_workers = _load_batch_spec(args.spec)
    max_workers = args.max_workers if args.max_workers is not None else spec_workers
    if max_workers is not None and max_workers < 0:
        raise ReproError(f"--max-workers must be >= 0, got {max_workers}")
    runner = BatchRunner(max_workers=max_workers, data_dir=args.data_dir)
    responses = runner.run(requests)
    for index, response in enumerate(responses):
        label = response.request.request_id or f"job {index}"
        print(f"[{label}] {response.summary()}")
    payload = [response.to_dict() for response in responses]
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.output}")
    else:
        print(json.dumps(payload, indent=2))
    return 0 if all(response.ok for response in responses) else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import JobManager, RunStore, create_server

    store = RunStore(args.db)
    manager = JobManager(store, data_dir=args.data_dir,
                         max_workers=args.max_workers,
                         shared_memory=args.shared_memory == "on",
                         scale_tier=args.scale_tier,
                         scale_budget_bytes=(args.scale_budget_mb * 1024 * 1024
                                             if args.scale_budget_mb is not None
                                             else None),
                         scan_workers=args.scan_workers)
    if args.reset:
        summary = store.init_db(reset=True)
        print(f"reset {summary['db_path']} "
              f"(backups: {', '.join(summary['backups']) or 'none'})")
    resumed = manager.start()
    if resumed:
        print(f"resuming {len(resumed)} interrupted job(s): "
              f"{', '.join(resumed)}", flush=True)
    server = create_server(args.host, args.port, manager, store)
    host, port = server.server_address[:2]
    # Tests and scripts parse this line to find an ephemeral port (0).
    print(f"listening on http://{host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        manager.stop()
        store.close()
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    print("Table 1 — original datasets")
    print(format_table(table1_rows()))
    print("\nTable 2 — original dataset properties (published)")
    print(format_table(table2_rows()))
    print("\nTable 3 — sampled graph properties (published vs measured proxies)")
    print(format_table(table3_rows(sample_sizes=args.sizes, seed=args.seed,
                                   measure=not args.no_measure)))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    runner = ExperimentRunner()
    thetas = tuple(args.thetas) if args.thetas else (0.9, 0.8, 0.7, 0.6, 0.5)

    def emit(series, x_label, y_label, title):
        if args.chart:
            print(render_series_chart(series, x_label=x_label, y_label=y_label,
                                      title=title))
        else:
            print(format_series(series, x_label=x_label, y_label=y_label))

    if args.name == "fig6":
        series = figure6_series(args.dataset, length_threshold=args.length,
                                sample_size=args.size, thetas=thetas,
                                sweep_mode=args.sweep_mode, runner=runner)
        emit(series, "theta", "distortion", f"Figure 6 — {args.dataset}, L={args.length}")
    elif args.name == "fig7":
        both = figure7_series(args.dataset, sample_size=args.size, thetas=thetas,
                              sweep_mode=args.sweep_mode, runner=runner)
        for metric, series in both.items():
            print(f"== {metric} ==")
            emit(series, "theta", metric, f"Figure 7 — {args.dataset}")
    elif args.name == "fig8":
        series = figure8_series(args.dataset, length_threshold=args.length,
                                sample_size=args.size, thetas=thetas,
                                sweep_mode=args.sweep_mode, runner=runner)
        emit(series, "theta", "mean_cc_diff", f"Figure 8 — {args.dataset}, L={args.length}")
    elif args.name == "fig10":
        series = figure10_series(args.dataset, theta=args.theta,
                                 sweep_mode=args.sweep_mode, runner=runner)
        emit(series, "size", "runtime_s", f"Figure 10 — {args.dataset}")
    else:
        print(f"unknown figure {args.name!r}", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lopacity",
        description="L-opacity: linkage-aware graph anonymization (EDBT 2014 reproduction)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_graph_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--input", help="edge-list file to load (overrides --dataset)")
        sub.add_argument("--dataset", default="gnutella", choices=dataset_names())
        sub.add_argument("--size", type=int, default=100, help="sample size (nodes)")
        sub.add_argument("--seed", type=int, default=0)

    opacity = subparsers.add_parser("opacity", help="report L-opacity of a graph")
    add_graph_arguments(opacity)
    opacity.add_argument("--length", "-L", type=int, default=1)
    opacity.set_defaults(func=_cmd_opacity)

    anonymize = subparsers.add_parser("anonymize", help="run an anonymization algorithm")
    add_graph_arguments(anonymize)
    anonymize.add_argument("--algorithm", default="rem", choices=available_algorithms())
    anonymize.add_argument("--theta", type=float, default=0.5)
    anonymize.add_argument("--length", "-L", type=int, default=1)
    anonymize.add_argument("--lookahead", type=int, default=1)
    anonymize.add_argument("--evaluation-mode", choices=EVALUATION_MODES,
                           default="incremental", dest="evaluation_mode",
                           help="candidate evaluation strategy: delta-evaluated "
                                "sessions (incremental) or per-candidate recounts "
                                "(scratch); both choose identical edits")
    anonymize.add_argument("--scan-mode", choices=SCAN_MODES,
                           default="batched", dest="scan_mode",
                           help="candidate scan strategy: one stacked pass over "
                                "a step's single-edge candidates (batched), "
                                "one preview per candidate (per_candidate), or "
                                "the batched scan sharded across a worker pool "
                                "(parallel); all choose identical edits")
    anonymize.add_argument("--scan-workers", type=int, default=None,
                           dest="scan_workers",
                           help="worker pool size for --scan-mode parallel "
                                "(default: min(4, cpu count) on multi-core "
                                "machines, serial otherwise)")
    anonymize.add_argument("--insertion-cap", type=int, default=None)
    anonymize.add_argument("--timeout", type=float, default=None,
                           help="wall-clock budget in seconds (best-effort stop)")
    anonymize.add_argument("--progress", action="store_true",
                           help="print one line per applied greedy step")
    anonymize.add_argument("--output", help="write the anonymized edge list here")
    anonymize.set_defaults(func=_cmd_anonymize)

    sweep = subparsers.add_parser(
        "sweep", help="run a multi-axis grid as grouped checkpointed "
                      "anonymization passes with shared caches")
    add_graph_arguments(sweep)
    sweep.add_argument("--algorithms", nargs="+", default=["rem"],
                       choices=available_algorithms(),
                       help="algorithms swept over the θ grid")
    sweep.add_argument("--thetas", type=float, nargs="+",
                       default=[0.9, 0.8, 0.7, 0.6, 0.5],
                       help="θ grid (deduplicated and executed descending)")
    sweep.add_argument("--axis", action="append", metavar="NAME=V1,V2,...",
                       help="additional grid axis (repeatable): dataset, "
                            "size, algorithm, l/length, lookahead, seed, or "
                            "theta with comma-separated values; overrides "
                            "the corresponding flag")
    sweep.add_argument("--length", "-L", type=int, default=1)
    sweep.add_argument("--lookahead", type=int, default=1)
    sweep.add_argument("--sweep-mode", choices=SWEEP_MODES,
                       default="checkpointed", dest="sweep_mode",
                       help="checkpointed: one anonymization pass per "
                            "(algorithm, L, lookahead, seed) group with per-θ "
                            "checkpoints; independent: one run per grid point; "
                            "both produce identical results")
    sweep.add_argument("--evaluation-mode", choices=EVALUATION_MODES,
                       default="incremental", dest="evaluation_mode")
    sweep.add_argument("--scan-mode", choices=SCAN_MODES,
                       default="batched", dest="scan_mode")
    sweep.add_argument("--scan-workers", type=int, default=None,
                       dest="scan_workers",
                       help="worker pool size for --scan-mode parallel "
                            "(ignored inside pooled grid workers)")
    sweep.add_argument("--insertion-cap", type=int, default=None)
    sweep.add_argument("--no-utility", action="store_true",
                       help="skip the per-θ utility metrics")
    sweep.add_argument("--max-workers", type=int, default=0,
                       help="worker processes for the groups "
                            "(0 = run in-process)")
    sweep.add_argument("--shared-memory", choices=("on", "off"), default="on",
                       dest="shared_memory",
                       help="zero-copy shared-memory data plane for pooled "
                            "grids: the parent loads each sample and runs "
                            "each L_max distance computation once, workers "
                            "attach read-only views and fan out per θ-sweep "
                            "group (default: on; 'off' fans whole sample "
                            "groups instead; ignored with --max-workers 0)")
    sweep.add_argument("--scale-tier", choices=SCALE_TIERS, default="auto",
                       dest="scale_tier",
                       help="distance-plane scale tier: dense keeps the full "
                            "n x n matrix in memory, tiled streams L_max row "
                            "tiles through a bounded cache with temp-file "
                            "spill, auto picks dense only while it fits the "
                            "byte budget (default: auto)")
    sweep.add_argument("--scale-budget-mb", type=int, default=None,
                       dest="scale_budget_mb",
                       help="byte budget of the scale tier in MiB: the "
                            "auto-tier dense/tiled threshold and the tiled "
                            "tile-cache bound (default: 512)")
    sweep.add_argument("--output", help="write the JSON sweep response here")
    sweep.set_defaults(func=_cmd_sweep)

    batch = subparsers.add_parser(
        "batch", help="execute a JSON job spec across worker processes")
    batch.add_argument("spec", help="path to the JSON job spec ('-' for stdin)")
    batch.add_argument("--max-workers", type=int, default=None,
                       help="worker processes (0 = run in-process; default: auto)")
    batch.add_argument("--data-dir", default=None,
                       help="directory with real SNAP dataset files")
    batch.add_argument("--output", help="write the JSON results here (default: stdout)")
    batch.set_defaults(func=_cmd_batch)

    serve = subparsers.add_parser(
        "serve", help="run the anonymization service: an HTTP job API over "
                      "a persistent, resumable SQLite run store")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port (0 = pick an ephemeral port; the "
                            "chosen one is printed on startup)")
    serve.add_argument("--db", default="repro_runs.db",
                       help="path of the SQLite run store")
    serve.add_argument("--data-dir", default=None,
                       help="directory with real SNAP dataset files")
    serve.add_argument("--max-workers", type=int, default=0,
                       help="0 = execute jobs in the service process with "
                            "checkpoint streaming and per-θ resume "
                            "(default); n/–1 = fan jobs across a process "
                            "pool (resume at group granularity only)")
    serve.add_argument("--shared-memory", choices=("on", "off"), default="on",
                       dest="shared_memory",
                       help="zero-copy shared-memory data plane for pooled "
                            "job execution (default: on; ignored with "
                            "--max-workers 0)")
    serve.add_argument("--scale-tier", choices=SCALE_TIERS, default="auto",
                       dest="scale_tier",
                       help="default distance-plane scale tier applied to "
                            "submitted jobs that leave theirs on 'auto' "
                            "(default: auto)")
    serve.add_argument("--scale-budget-mb", type=int, default=None,
                       dest="scale_budget_mb",
                       help="default scale-tier byte budget in MiB applied "
                            "to submitted jobs that set none (default: 512)")
    serve.add_argument("--scan-workers", type=int, default=None,
                       dest="scan_workers",
                       help="default parallel-scan pool size applied at "
                            "execution time to submitted jobs that kept the "
                            "default scan mode (fingerprints unchanged)")
    serve.add_argument("--reset", action="store_true",
                       help="archive and re-initialize the run store before "
                            "serving (rolling window of 3 backups)")
    serve.set_defaults(func=_cmd_serve)

    tables = subparsers.add_parser("tables", help="print Tables 1-3")
    tables.add_argument("--sizes", type=int, nargs="*", default=[100])
    tables.add_argument("--seed", type=int, default=42)
    tables.add_argument("--no-measure", action="store_true",
                        help="print only the published values")
    tables.set_defaults(func=_cmd_tables)

    figure = subparsers.add_parser("figure", help="compute one figure's series")
    figure.add_argument("--name", required=True, choices=("fig6", "fig7", "fig8", "fig10"))
    figure.add_argument("--dataset", default="google", choices=dataset_names())
    figure.add_argument("--size", type=int, default=50)
    figure.add_argument("--length", "-L", type=int, default=1)
    figure.add_argument("--theta", type=float, default=0.5)
    figure.add_argument("--thetas", type=float, nargs="*")
    figure.add_argument("--sweep-mode", choices=SWEEP_MODES,
                        default="checkpointed", dest="sweep_mode",
                        help="execute each θ series as one checkpointed pass "
                             "(default) or as independent per-θ runs")
    figure.add_argument("--chart", action="store_true",
                        help="render an ASCII chart instead of the numeric series")
    figure.set_defaults(func=_cmd_figure)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point.

    Domain errors (bad parameters, malformed job specs, unknown
    algorithms) are reported as one ``error:`` line with exit code 2
    instead of a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
