"""Command-line interface for the L-opacity reproduction.

Subcommands
-----------
* ``anonymize`` — anonymize an edge-list file (or a built-in dataset sample)
  with one of the heuristics and write the result.
* ``opacity`` — report the L-opacity of a graph for a given L.
* ``tables`` — print the reproduction of Tables 1-3.
* ``figure`` — compute one figure's series and print it.

Examples
--------
::

    repro-lopacity opacity --dataset gnutella --size 100 --length 2
    repro-lopacity anonymize --dataset google --size 60 --algorithm rem \
        --theta 0.5 --length 1 --output anonymized.edges
    repro-lopacity tables
    repro-lopacity figure --name fig6 --dataset google --size 50
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import DegreePairTyping, OpacityComputer
from repro.datasets import dataset_names, load_sample
from repro.experiments import (
    ExperimentConfig,
    ExperimentRunner,
    figure6_series,
    figure7_series,
    figure8_series,
    figure10_series,
    format_series,
    format_table,
    render_series_chart,
    table1_rows,
    table2_rows,
    table3_rows,
)
from repro.experiments.runner import make_algorithm
from repro.graph.io import read_edge_list, write_edge_list
from repro.metrics import utility_report


def _load_graph(args: argparse.Namespace):
    if args.input:
        graph, _labels = read_edge_list(args.input)
        return graph
    return load_sample(args.dataset, args.size, seed=args.seed)


def _cmd_opacity(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    computer = OpacityComputer(DegreePairTyping(graph), args.length)
    result = computer.evaluate(graph)
    print(f"vertices={graph.num_vertices} edges={graph.num_edges}")
    print(f"L={args.length} max L-opacity={result.max_opacity:.4f} "
          f"types at max={result.types_at_max}")
    worst = sorted(result.per_type.values(), key=lambda entry: -entry.opacity)[:10]
    for entry in worst:
        print(f"  type {entry.type_key}: {entry.within_threshold}/{entry.total_pairs} "
              f"= {entry.opacity:.3f}")
    return 0


def _cmd_anonymize(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    config = ExperimentConfig(
        dataset=args.dataset, sample_size=args.size, algorithm=args.algorithm,
        theta=args.theta, length_threshold=args.length, lookahead=args.lookahead,
        seed=args.seed, insertion_candidate_cap=args.insertion_cap)
    algorithm = make_algorithm(config)
    result = algorithm.anonymize(graph)
    report = utility_report(result.original_graph, result.anonymized_graph)
    print(result.summary())
    print(f"degree EMD={report.degree_emd:.4f} geodesic EMD={report.geodesic_emd:.4f} "
          f"mean |dCC|={report.mean_clustering_difference:.4f}")
    if args.output:
        write_edge_list(result.anonymized_graph, args.output,
                        header=f"L-opaque graph (L={args.length}, theta={args.theta})")
        print(f"wrote {args.output}")
    return 0 if result.success else 1


def _cmd_tables(args: argparse.Namespace) -> int:
    print("Table 1 — original datasets")
    print(format_table(table1_rows()))
    print("\nTable 2 — original dataset properties (published)")
    print(format_table(table2_rows()))
    print("\nTable 3 — sampled graph properties (published vs measured proxies)")
    print(format_table(table3_rows(sample_sizes=args.sizes, seed=args.seed,
                                   measure=not args.no_measure)))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    runner = ExperimentRunner()
    thetas = tuple(args.thetas) if args.thetas else (0.9, 0.8, 0.7, 0.6, 0.5)

    def emit(series, x_label, y_label, title):
        if args.chart:
            print(render_series_chart(series, x_label=x_label, y_label=y_label,
                                      title=title))
        else:
            print(format_series(series, x_label=x_label, y_label=y_label))

    if args.name == "fig6":
        series = figure6_series(args.dataset, length_threshold=args.length,
                                sample_size=args.size, thetas=thetas, runner=runner)
        emit(series, "theta", "distortion", f"Figure 6 — {args.dataset}, L={args.length}")
    elif args.name == "fig7":
        both = figure7_series(args.dataset, sample_size=args.size, thetas=thetas,
                              runner=runner)
        for metric, series in both.items():
            print(f"== {metric} ==")
            emit(series, "theta", metric, f"Figure 7 — {args.dataset}")
    elif args.name == "fig8":
        series = figure8_series(args.dataset, length_threshold=args.length,
                                sample_size=args.size, thetas=thetas, runner=runner)
        emit(series, "theta", "mean_cc_diff", f"Figure 8 — {args.dataset}, L={args.length}")
    elif args.name == "fig10":
        series = figure10_series(args.dataset, theta=args.theta, runner=runner)
        emit(series, "size", "runtime_s", f"Figure 10 — {args.dataset}")
    else:
        print(f"unknown figure {args.name!r}", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lopacity",
        description="L-opacity: linkage-aware graph anonymization (EDBT 2014 reproduction)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_graph_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--input", help="edge-list file to load (overrides --dataset)")
        sub.add_argument("--dataset", default="gnutella", choices=dataset_names())
        sub.add_argument("--size", type=int, default=100, help="sample size (nodes)")
        sub.add_argument("--seed", type=int, default=0)

    opacity = subparsers.add_parser("opacity", help="report L-opacity of a graph")
    add_graph_arguments(opacity)
    opacity.add_argument("--length", "-L", type=int, default=1)
    opacity.set_defaults(func=_cmd_opacity)

    anonymize = subparsers.add_parser("anonymize", help="run an anonymization heuristic")
    add_graph_arguments(anonymize)
    anonymize.add_argument("--algorithm", default="rem",
                           choices=("rem", "rem-ins", "gaded-rand", "gaded-max", "gades"))
    anonymize.add_argument("--theta", type=float, default=0.5)
    anonymize.add_argument("--length", "-L", type=int, default=1)
    anonymize.add_argument("--lookahead", type=int, default=1)
    anonymize.add_argument("--insertion-cap", type=int, default=None)
    anonymize.add_argument("--output", help="write the anonymized edge list here")
    anonymize.set_defaults(func=_cmd_anonymize)

    tables = subparsers.add_parser("tables", help="print Tables 1-3")
    tables.add_argument("--sizes", type=int, nargs="*", default=[100])
    tables.add_argument("--seed", type=int, default=42)
    tables.add_argument("--no-measure", action="store_true",
                        help="print only the published values")
    tables.set_defaults(func=_cmd_tables)

    figure = subparsers.add_parser("figure", help="compute one figure's series")
    figure.add_argument("--name", required=True, choices=("fig6", "fig7", "fig8", "fig10"))
    figure.add_argument("--dataset", default="google", choices=dataset_names())
    figure.add_argument("--size", type=int, default=50)
    figure.add_argument("--length", "-L", type=int, default=1)
    figure.add_argument("--theta", type=float, default=0.5)
    figure.add_argument("--thetas", type=float, nargs="*")
    figure.add_argument("--chart", action="store_true",
                        help="render an ASCII chart instead of the numeric series")
    figure.set_defaults(func=_cmd_figure)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
