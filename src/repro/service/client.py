"""Thin urllib client for the anonymization service HTTP API.

:class:`ServiceClient` wraps the routes of :mod:`repro.service.http` in
typed helpers — submit a request record, poll status, fetch the parsed
result record — raising :class:`ServiceError` (with the HTTP status and
decoded payload) on any non-2xx answer.  It is what the tests, the CI
smoke job, and scripts use to talk to ``repro-lopacity serve``; it has no
dependencies beyond the standard library.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

from repro.api.requests import AnonymizationRequest, AnonymizationResponse
from repro.api.sweeps import GridRequest, GridResponse
from repro.api.theta_sweep import SweepRequest, SweepResponse
from repro.errors import ReproError

__all__ = ["ServiceClient", "ServiceError"]

#: Request record type -> job kind, mirrored by the response parsers.
_KIND_OF = {
    AnonymizationRequest: "anonymize",
    SweepRequest: "sweep",
    GridRequest: "grid",
}

_RESPONSE_OF = {
    "anonymize": AnonymizationResponse,
    "sweep": SweepResponse,
    "grid": GridResponse,
}


class ServiceError(ReproError):
    """A non-2xx answer from the service, carrying status and payload."""

    def __init__(self, status: int, payload: Any) -> None:
        message = payload.get("error") if isinstance(payload, dict) else None
        super().__init__(message or f"service returned HTTP {status}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """Talk to one running service instance at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self._base_url = base_url.rstrip("/")
        self._timeout = timeout

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _call(self, method: str, path: str,
              payload: Optional[Dict[str, Any]] = None) -> Any:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self._base_url + path, data=body, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self._timeout) as answer:
                return json.loads(answer.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                decoded = json.loads(exc.read().decode("utf-8"))
            except Exception:  # noqa: BLE001 — body may not be JSON
                decoded = None
            raise ServiceError(exc.code, decoded) from exc

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """``GET /healthz``."""
        return self._call("GET", "/healthz")

    def submit(self, request: Any, kind: Optional[str] = None) -> Dict[str, Any]:
        """``POST /jobs`` — kind inferred from the record type by default."""
        if kind is None:
            kind = _KIND_OF.get(type(request))
            if kind is None:
                raise ReproError(
                    f"cannot infer job kind from {type(request).__name__}; "
                    f"pass kind= explicitly")
        return self._call("POST", "/jobs",
                          {"kind": kind, "request": request.to_dict()})

    def jobs(self) -> list:
        """``GET /jobs``."""
        return self._call("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> Dict[str, Any]:
        """``GET /jobs/{id}``."""
        return self._call("GET", f"/jobs/{job_id}")

    def result(self, job_id: str, parse: bool = True) -> Any:
        """``GET /jobs/{id}/result`` — parsed into the response record."""
        answer = self._call("GET", f"/jobs/{job_id}/result")
        if not parse:
            return answer
        record = _RESPONSE_OF[answer["kind"]]
        return record.from_dict(answer["result"])

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """``DELETE /jobs/{id}``."""
        return self._call("DELETE", f"/jobs/{job_id}")

    def init(self, reset: bool = False) -> Dict[str, Any]:
        """``POST /admin/init``."""
        return self._call("POST", "/admin/init", {"reset": reset})

    def wait(self, job_id: str, timeout: float = 120.0,
             poll_seconds: float = 0.05) -> Dict[str, Any]:
        """Poll until the job reaches a terminal status; returns it."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["status"] in ("done", "error", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['status']} after {timeout}s")
            time.sleep(poll_seconds)
