"""The persistent run store: one SQLite file per service instance.

Durability model (DESIGN.md §11): every submitted job is written to the
``jobs`` table *before* it executes — request JSON, canonical fingerprint
(:func:`~repro.api.requests.request_fingerprint`), status, timestamps.
While a grid runs, the job manager streams each crossed θ checkpoint into
``checkpoints`` and each finished per-request response into ``responses``;
the final wrapped result lands in ``results``.  A process that dies
mid-run therefore leaves behind exactly the state needed to continue:
jobs still in ``queued``/``running`` are re-enqueued on startup, served
from their persisted responses/checkpoints, and only the missing suffix
of work is re-executed.

The fingerprint column powers dedup: re-submitting a semantically
identical request finds the finished job and is answered from ``results``
with zero new work.

``init_db(reset=True)`` archives the current database into a rolling
``backups/`` window (latest 3 kept) before re-creating the schema — the
operational reset behind ``POST /admin/init``.

SQLite serves concurrent readers/writers from multiple threads: the store
opens one connection with ``check_same_thread=False`` in WAL mode and
serializes its own writes behind an ``RLock`` (the HTTP handler threads
and the job worker thread share the instance).
"""

from __future__ import annotations

import json
import os
import shutil
import sqlite3
import threading
import time
import uuid
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["JOB_STATUSES", "RunStore"]

#: Job lifecycle states: ``queued`` → ``running`` → one of
#: ``done`` / ``error`` / ``cancelled``.
JOB_STATUSES: Tuple[str, ...] = ("queued", "running", "done", "error",
                                 "cancelled")

#: Number of database backups kept by ``init_db(reset=True)``.
BACKUP_KEEP = 3

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id           TEXT PRIMARY KEY,
    kind         TEXT NOT NULL,
    fingerprint  TEXT NOT NULL,
    request_json TEXT NOT NULL,
    num_requests INTEGER NOT NULL,
    status       TEXT NOT NULL,
    error        TEXT,
    created_at   REAL NOT NULL,
    started_at   REAL,
    finished_at  REAL
);
CREATE INDEX IF NOT EXISTS jobs_fingerprint ON jobs (fingerprint, created_at);
CREATE INDEX IF NOT EXISTS jobs_status ON jobs (status);

CREATE TABLE IF NOT EXISTS checkpoints (
    job_id          TEXT NOT NULL,
    request_index   INTEGER NOT NULL,
    theta           REAL NOT NULL,
    checkpoint_json TEXT NOT NULL,
    created_at      REAL NOT NULL,
    PRIMARY KEY (job_id, request_index)
);

CREATE TABLE IF NOT EXISTS responses (
    job_id        TEXT NOT NULL,
    request_index INTEGER NOT NULL,
    response_json TEXT NOT NULL,
    created_at    REAL NOT NULL,
    PRIMARY KEY (job_id, request_index)
);

CREATE TABLE IF NOT EXISTS results (
    job_id        TEXT PRIMARY KEY,
    response_json TEXT NOT NULL,
    created_at    REAL NOT NULL
);
"""


class RunStore:
    """Thread-safe persistence for service jobs in one SQLite file."""

    def __init__(self, db_path: str) -> None:
        self._db_path = os.fspath(db_path)
        self._lock = threading.RLock()
        directory = os.path.dirname(os.path.abspath(self._db_path))
        os.makedirs(directory, exist_ok=True)
        self._conn = sqlite3.connect(self._db_path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.executescript(_SCHEMA)
            self._conn.commit()

    @property
    def db_path(self) -> str:
        """Path of the backing SQLite file."""
        return self._db_path

    def close(self) -> None:
        """Close the underlying connection."""
        with self._lock:
            self._conn.close()

    # ------------------------------------------------------------------
    # schema init / reset
    # ------------------------------------------------------------------
    def init_db(self, reset: bool = False) -> Dict[str, Any]:
        """(Re-)initialize the schema, optionally archiving the old file.

        With ``reset=True`` the current database file is copied into
        ``<db dir>/backups/`` (rolling window of :data:`BACKUP_KEEP`, the
        oldest dropped) and the live database is emptied.  Returns a
        summary dict: ``ok``, ``db_path``, ``existed_before``,
        ``did_reset``, ``backups`` (surviving archive names, newest
        first), and ``stats`` (per-table row counts after the init).
        """
        with self._lock:
            existed = os.path.exists(self._db_path) and \
                self._count("jobs") is not None
            backups: List[str] = []
            did_reset = False
            if reset:
                backups = self._backup()
                for table in ("jobs", "checkpoints", "responses", "results"):
                    self._conn.execute(f"DELETE FROM {table}")
                did_reset = True
            self._conn.executescript(_SCHEMA)
            self._conn.commit()
            return {
                "ok": True,
                "db_path": self._db_path,
                "existed_before": existed,
                "did_reset": did_reset,
                "backups": backups,
                "stats": {table: self._count(table) or 0
                          for table in ("jobs", "checkpoints",
                                        "responses", "results")},
            }

    def _count(self, table: str) -> Optional[int]:
        try:
            row = self._conn.execute(f"SELECT COUNT(*) AS n FROM {table}"
                                     ).fetchone()
        except sqlite3.OperationalError:
            return None
        return int(row["n"])

    def _backup(self) -> List[str]:
        """Archive the live DB under ``backups/``; return surviving names."""
        directory = os.path.dirname(os.path.abspath(self._db_path))
        backup_dir = os.path.join(directory, "backups")
        os.makedirs(backup_dir, exist_ok=True)
        base = os.path.basename(self._db_path)
        stamp = time.strftime("%Y%m%d-%H%M%S")
        name = f"{base}.{stamp}"
        target = os.path.join(backup_dir, name)
        seq = 0
        while os.path.exists(target):  # same-second resets stay distinct
            seq += 1
            target = os.path.join(backup_dir, f"{name}.{seq}")
        # A plain copy would tear a database with live WAL pages; the
        # sqlite backup API snapshots a consistent image.
        archive = sqlite3.connect(target)
        try:
            self._conn.backup(archive)
        finally:
            archive.close()
        survivors = sorted(
            (entry for entry in os.listdir(backup_dir)
             if entry.startswith(base + ".")),
            key=lambda entry: (os.path.getmtime(os.path.join(backup_dir,
                                                             entry)), entry),
            reverse=True)
        for stale in survivors[BACKUP_KEEP:]:
            os.remove(os.path.join(backup_dir, stale))
        return survivors[:BACKUP_KEEP]

    # ------------------------------------------------------------------
    # jobs
    # ------------------------------------------------------------------
    def create_job(self, kind: str, fingerprint: str, request_json: str,
                   num_requests: int) -> str:
        """Insert a new ``queued`` job; returns its generated id."""
        job_id = uuid.uuid4().hex[:12]
        with self._lock:
            self._conn.execute(
                "INSERT INTO jobs (id, kind, fingerprint, request_json,"
                " num_requests, status, created_at)"
                " VALUES (?, ?, ?, ?, ?, 'queued', ?)",
                (job_id, kind, fingerprint, request_json, num_requests,
                 time.time()))
            self._conn.commit()
        return job_id

    def get_job(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The job row as a plain dict, or ``None``."""
        with self._lock:
            row = self._conn.execute("SELECT * FROM jobs WHERE id = ?",
                                     (job_id,)).fetchone()
        return dict(row) if row is not None else None

    def list_jobs(self) -> List[Dict[str, Any]]:
        """All job rows, newest first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM jobs ORDER BY created_at DESC, id").fetchall()
        return [dict(row) for row in rows]

    def find_job(self, fingerprint: str,
                 statuses: Sequence[str]) -> Optional[Dict[str, Any]]:
        """Newest job with this fingerprint in one of ``statuses``."""
        if not statuses:
            return None
        marks = ",".join("?" for _ in statuses)
        with self._lock:
            row = self._conn.execute(
                f"SELECT * FROM jobs WHERE fingerprint = ? AND status IN"
                f" ({marks}) ORDER BY created_at DESC, id LIMIT 1",
                (fingerprint, *statuses)).fetchone()
        return dict(row) if row is not None else None

    def set_status(self, job_id: str, status: str,
                   error: Optional[str] = None) -> None:
        """Advance a job's lifecycle state (stamps started/finished)."""
        if status not in JOB_STATUSES:
            raise ConfigurationError(
                f"unknown job status {status!r}; known: {JOB_STATUSES}")
        now = time.time()
        sets = ["status = ?", "error = ?"]
        values: List[Any] = [status, error]
        if status == "running":
            sets.append("started_at = ?")
            values.append(now)
        if status in ("done", "error", "cancelled"):
            sets.append("finished_at = ?")
            values.append(now)
        values.append(job_id)
        with self._lock:
            self._conn.execute(
                f"UPDATE jobs SET {', '.join(sets)} WHERE id = ?", values)
            self._conn.commit()

    def interrupted_jobs(self) -> List[Dict[str, Any]]:
        """Jobs a dead process left in flight, oldest first (resume order)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE status IN ('queued', 'running')"
                " ORDER BY created_at, id").fetchall()
        return [dict(row) for row in rows]

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------
    def record_checkpoint(self, job_id: str, request_index: int, theta: float,
                          checkpoint_json: str) -> None:
        """Persist the crossed-θ checkpoint of one request of a job."""
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO checkpoints"
                " (job_id, request_index, theta, checkpoint_json, created_at)"
                " VALUES (?, ?, ?, ?, ?)",
                (job_id, request_index, theta, checkpoint_json, time.time()))
            self._conn.commit()

    def checkpoints(self, job_id: str) -> Dict[int, str]:
        """All persisted checkpoints of a job: ``{request_index: json}``."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT request_index, checkpoint_json FROM checkpoints"
                " WHERE job_id = ?", (job_id,)).fetchall()
        return {int(row["request_index"]): row["checkpoint_json"]
                for row in rows}

    def latest_checkpoint(self, job_id: str) -> Optional[Dict[str, Any]]:
        """Summary of the most recently persisted checkpoint, if any."""
        with self._lock:
            row = self._conn.execute(
                "SELECT request_index, theta, checkpoint_json, created_at"
                " FROM checkpoints WHERE job_id = ?"
                " ORDER BY created_at DESC, request_index DESC LIMIT 1",
                (job_id,)).fetchone()
        if row is None:
            return None
        payload = json.loads(row["checkpoint_json"])
        return {
            "request_index": int(row["request_index"]),
            "theta": float(row["theta"]),
            "num_steps": len(payload.get("steps", ())),
            "max_opacity": payload.get("max_opacity"),
            "created_at": float(row["created_at"]),
        }

    def num_checkpoints(self, job_id: str) -> int:
        """How many per-θ checkpoints the job has persisted."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) AS n FROM checkpoints WHERE job_id = ?",
                (job_id,)).fetchone()
        return int(row["n"])

    # ------------------------------------------------------------------
    # per-request responses and final results
    # ------------------------------------------------------------------
    def record_response(self, job_id: str, request_index: int,
                        response_json: str) -> None:
        """Persist the finished response of one request of a job."""
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO responses"
                " (job_id, request_index, response_json, created_at)"
                " VALUES (?, ?, ?, ?)",
                (job_id, request_index, response_json, time.time()))
            self._conn.commit()

    def responses(self, job_id: str) -> Dict[int, str]:
        """All persisted responses of a job: ``{request_index: json}``."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT request_index, response_json FROM responses"
                " WHERE job_id = ?", (job_id,)).fetchall()
        return {int(row["request_index"]): row["response_json"]
                for row in rows}

    def num_responses(self, job_id: str) -> int:
        """How many per-request responses the job has persisted."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) AS n FROM responses WHERE job_id = ?",
                (job_id,)).fetchone()
        return int(row["n"])

    def record_result(self, job_id: str, response_json: str) -> None:
        """Persist a job's final wrapped result."""
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO results"
                " (job_id, response_json, created_at) VALUES (?, ?, ?)",
                (job_id, response_json, time.time()))
            self._conn.commit()

    def get_result(self, job_id: str) -> Optional[str]:
        """A job's final result JSON, or ``None``."""
        with self._lock:
            row = self._conn.execute(
                "SELECT response_json FROM results WHERE job_id = ?",
                (job_id,)).fetchone()
        return row["response_json"] if row is not None else None
