"""Background job execution over the run store.

A :class:`JobManager` owns one worker thread and one
:class:`~repro.service.store.RunStore`.  Submitted jobs — single
:class:`~repro.api.requests.AnonymizationRequest` records,
:class:`~repro.api.theta_sweep.SweepRequest` sweeps, or
:class:`~repro.api.sweeps.GridRequest` grids — are persisted first and
executed in submission order on the existing grid engine
(:func:`~repro.api.sweeps.execute_sample_group`, the unit
:class:`~repro.api.batch.BatchRunner` fans out).  While a sample group
runs, a checkpoint-persisting observer streams every crossed θ into the
store; each finished group's responses land as well.  The payoff is the
restart path: :meth:`JobManager.start` re-enqueues every job a dead
process left ``queued``/``running``, and :meth:`_execute` serves finished
requests from their stored responses, materializes already-crossed grid
points from their checkpoints, and *continues* each interrupted
checkpointed pass from its lowest-θ checkpoint — bit-identical to the
uninterrupted run (DESIGN.md §11).

Dedup rides on the canonical fingerprint: re-submitting a semantically
identical request returns the finished (or in-flight) job instead of
recomputing anything.
"""

from __future__ import annotations

import dataclasses
import glob
import json
import os
import queue
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.api.checkpoints import checkpoint_from_json, checkpoint_to_json
from repro.api.progress import (
    CancellationToken,
    CheckpointBuffer,
    combine_observers,
)
from repro.api.requests import (
    AnonymizationRequest,
    AnonymizationResponse,
    request_fingerprint,
)
from repro.api.sweeps import GridRequest, GridResponse, sample_groups
from repro.api.theta_sweep import SweepRequest, SweepResponse
from repro.errors import ConfigurationError, ReproError
from repro.service.store import RunStore

__all__ = ["JOB_KINDS", "JobManager", "parse_request", "wrap_result"]

#: Submittable job kinds and their request record types.
JOB_KINDS: Dict[str, type] = {
    "anonymize": AnonymizationRequest,
    "sweep": SweepRequest,
    "grid": GridRequest,
}

_STOP = object()  # worker-queue sentinel


def parse_request(kind: str, payload: Any) -> Any:
    """Build the request record for a job ``kind`` from its JSON payload."""
    record = JOB_KINDS.get(kind)
    if record is None:
        raise ConfigurationError(
            f"unknown job kind {kind!r}; known: {sorted(JOB_KINDS)}")
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"request payload must be a JSON object, got {type(payload).__name__}")
    return record.from_dict(payload)


def _requests_of(kind: str, request: Any) -> List[AnonymizationRequest]:
    """Flatten any job kind into its ordered request list."""
    if kind == "anonymize":
        return [request]
    return list(request.requests)


def wrap_result(kind: str, request: Any,
                responses: List[AnonymizationResponse]) -> Any:
    """Wrap per-request responses into the job kind's response record."""
    if kind == "anonymize":
        return responses[0]
    if kind == "sweep":
        return SweepResponse(responses=tuple(responses),
                             sweep_mode=request.sweep_mode,
                             num_groups=len(request.groups()))
    return GridResponse(responses=tuple(responses),
                        sweep_mode=request.sweep_mode,
                        num_groups=len(request.groups()),
                        num_sample_groups=len(request.sample_groups()))


class _StorePersister:
    """Observer streaming a sample group's checkpoints into the store.

    ``execute_sample_group`` announces each θ-group's *local* todo indices
    via ``on_group``; this sink maps them to the job's global request
    indices and records each subsequent checkpoint under every announced
    request whose θ matches.  Checkpoints emitted because the observer
    stopped the pass (``stop_reason="observer"``, i.e. cancellation) are
    skipped: a fresh run would have kept going, so they must not be
    materialized as final state on resume.
    """

    def __init__(self, store: RunStore, job_id: str,
                 group_global: List[int],
                 requests: List[AnonymizationRequest]) -> None:
        self._store = store
        self._job_id = job_id
        self._group_global = group_global
        self._requests = requests

    def __call__(self, local_indices: Tuple[int, ...], checkpoint: Any) -> None:
        if checkpoint.stop_reason == "observer":
            return
        payload = checkpoint_to_json(checkpoint)
        for local in local_indices:
            global_index = self._group_global[local]
            if abs(self._requests[global_index].theta - checkpoint.theta) <= 1e-12:
                self._store.record_checkpoint(self._job_id, global_index,
                                              checkpoint.theta, payload)


class JobManager:
    """Execute service jobs in a background thread, durably.

    Parameters
    ----------
    store:
        The :class:`RunStore` everything is persisted to.
    data_dir:
        Optional directory with real SNAP dataset files (forwarded to the
        engine's dataset loaders).
    max_workers:
        ``0`` (default) executes sample groups serially in the worker
        thread with checkpoint streaming — the mode that powers resume.
        Any other value fans whole jobs across a
        :class:`~repro.api.batch.BatchRunner` process pool instead;
        responses are still persisted per request, but checkpoints do not
        stream across process boundaries, so interrupted pooled jobs
        restart from their last finished *group* rather than θ.
    shared_memory:
        Forwarded to the :class:`~repro.api.batch.BatchRunner` of pooled
        grid jobs — ``None``/``True`` executes grids on the zero-copy
        shared-memory data plane (θ-sweep groups fan out over
        parent-published arenas), ``False`` falls back to the
        sample-group fan-out.  Irrelevant with ``max_workers=0``.
    scale_tier:
        Service-wide default of the distance-plane scale tier (the
        ``--scale-tier`` flag of ``repro-lopacity serve``).  Applied at
        execution time to every request that left its own ``scale_tier``
        on ``"auto"``; requests naming an explicit tier always win.
    scale_budget_bytes:
        Service-wide default of the scale-tier byte budget, applied to
        every request that set none.
    scan_workers:
        Service-wide default of the parallel-scan pool size (the
        ``--scan-workers`` flag of ``repro-lopacity serve``).  Applied at
        execution time — like the scale defaults, the stored request and
        its dedup fingerprint stay untouched — to every request that kept
        the default ``scan_mode="batched"`` and chose no ``scan_workers``
        of its own: those requests run with ``scan_mode="parallel"``.
        Requests naming a scan mode or worker count explicitly always win.
    """

    def __init__(self, store: RunStore, *, data_dir: Optional[str] = None,
                 max_workers: int = 0,
                 shared_memory: Optional[bool] = None,
                 scale_tier: str = "auto",
                 scale_budget_bytes: Optional[int] = None,
                 scan_workers: Optional[int] = None) -> None:
        from repro.graph.distance_store import validate_scale_tier

        validate_scale_tier(scale_tier)
        if scan_workers is not None and scan_workers < 0:
            raise ConfigurationError(
                f"scan_workers must be >= 0, got {scan_workers}")
        self._store = store
        self._data_dir = data_dir
        self._max_workers = max_workers
        self._shared_memory = shared_memory
        self._scale_tier = scale_tier
        self._scale_budget_bytes = scale_budget_bytes
        self._scan_workers = scan_workers
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self._tokens: Dict[str, CancellationToken] = {}
        self._tokens_lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> List[str]:
        """Start the worker thread, re-enqueueing interrupted jobs first.

        Returns the ids of the resumed jobs (oldest first), already queued
        ahead of anything submitted afterwards.
        """
        resumed = [job["id"] for job in self._store.interrupted_jobs()]
        for job_id in resumed:
            self._queue.put(job_id)
        self._thread = threading.Thread(target=self._worker,
                                        name="repro-service-worker",
                                        daemon=True)
        self._thread.start()
        return resumed

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        """Stop the worker after the current job and join it."""
        self._queue.put(_STOP)
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    # ------------------------------------------------------------------
    # submission / control
    # ------------------------------------------------------------------
    def submit(self, kind: str, request: Any) -> Dict[str, Any]:
        """Persist and enqueue a job; identical requests dedup to one.

        Returns ``{"job_id", "status", "deduped"}``.  A finished job with
        the same canonical fingerprint (and a stored result) is returned
        as-is — the resubmission performs zero new work; a queued/running
        twin coalesces onto the in-flight job.
        """
        fingerprint = request_fingerprint(request)
        done = self._store.find_job(fingerprint, ("done",))
        if done is not None and \
                self._store.get_result(done["id"]) is not None:
            return {"job_id": done["id"], "status": "done", "deduped": True}
        in_flight = self._store.find_job(fingerprint, ("queued", "running"))
        if in_flight is not None:
            return {"job_id": in_flight["id"],
                    "status": in_flight["status"], "deduped": True}
        num_requests = len(_requests_of(kind, request))
        job_id = self._store.create_job(kind, fingerprint,
                                        request.to_json(), num_requests)
        self._queue.put(job_id)
        return {"job_id": job_id, "status": "queued", "deduped": False}

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued or running job; returns whether it applied."""
        job = self._store.get_job(job_id)
        if job is None or job["status"] not in ("queued", "running"):
            return False
        if job["status"] == "queued":
            self._store.set_status(job_id, "cancelled")
            return True
        with self._tokens_lock:
            token = self._tokens.get(job_id)
        if token is not None:
            token.cancel()
            return True
        # Running in the store but not on this worker (dead process's
        # leftover that has not been resumed yet): mark it directly.
        self._store.set_status(job_id, "cancelled")
        return True

    def status(self, job_id: str) -> Optional[Dict[str, Any]]:
        """Job row + live progress counters, or ``None`` if unknown."""
        job = self._store.get_job(job_id)
        if job is None:
            return None
        job["num_responses"] = self._store.num_responses(job_id)
        job["num_checkpoints"] = self._store.num_checkpoints(job_id)
        job["latest_checkpoint"] = self._store.latest_checkpoint(job_id)
        return job

    def wait_for(self, job_id: str,
                 timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block until the job reaches a terminal status (or timeout)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self._store.get_job(job_id)
            if job is None:
                raise ConfigurationError(f"unknown job {job_id!r}")
            if job["status"] in ("done", "error", "cancelled"):
                return job
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['status']} after {timeout}s")
            time.sleep(0.02)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            try:
                self._run_job(item)
            except Exception as exc:  # noqa: BLE001 — the worker must survive
                try:
                    self._store.set_status(item, "error",
                                           f"{type(exc).__name__}: {exc}")
                except Exception:  # noqa: BLE001 — e.g. store closed mid-stop
                    return

    def _run_job(self, job_id: str) -> None:
        job = self._store.get_job(job_id)
        if job is None or job["status"] not in ("queued", "running"):
            return  # cancelled while queued, or already finished
        token = CancellationToken()
        with self._tokens_lock:
            self._tokens[job_id] = token
        failed = False
        try:
            self._execute(job, token)
        except Exception:
            failed = True
            raise
        finally:
            with self._tokens_lock:
                self._tokens.pop(job_id, None)
            # A terminal job has no future resume to serve, so its warmed
            # tile spills go; an *interrupted* job (process died while the
            # store still says "running") keeps them for the resumed pass.
            row = self._store.get_job(job_id)
            status = None if row is None else row["status"]
            if failed or status in ("done", "error", "cancelled"):
                self._cleanup_spills(job_id)

    def _execute(self, job: Dict[str, Any], token: CancellationToken) -> None:
        from repro.api.cache import ExecutionCache
        from repro.api.sweeps import execute_sample_group

        job_id = job["id"]
        kind = job["kind"]
        request = parse_request(kind, json.loads(job["request_json"]))
        request = self._apply_scale_defaults(kind, request)
        self._store.set_status(job_id, "running")
        requests = _requests_of(kind, request)
        sweep_mode = getattr(request, "sweep_mode", requests[0].sweep_mode)
        on_error = getattr(request, "on_error", "isolate")
        if self._max_workers != 0:
            self._execute_pooled(job_id, kind, request, requests, token)
            return
        stored = {index: AnonymizationResponse.from_json(text)
                  for index, text in self._store.responses(job_id).items()}
        checkpoints = {index: checkpoint_from_json(text)
                       for index, text
                       in self._store.checkpoints(job_id).items()}
        ordered: List[Optional[AnonymizationResponse]] = [None] * len(requests)
        cache = ExecutionCache(data_dir=self._data_dir,
                               spill_prefix=self._spill_prefix(job_id))
        for group_global in sample_groups(requests):
            if token.cancelled:
                self._store.set_status(job_id, "cancelled")
                return
            pending = [index for index in group_global
                       if index not in stored]
            if not pending:
                for index in group_global:
                    ordered[index] = stored[index]
                continue
            group = [requests[index] for index in group_global]
            resume_local = {local: checkpoints[global_index]
                            for local, global_index in enumerate(group_global)
                            if global_index in checkpoints}
            persister = _StorePersister(self._store, job_id, group_global,
                                        requests)
            observer = combine_observers(token,
                                         CheckpointBuffer(sink=persister))
            responses = execute_sample_group(
                group, sweep_mode=sweep_mode, observer=observer,
                data_dir=self._data_dir, cache=cache,
                resume_from=resume_local, on_error=on_error)
            cache.release(group[0])
            if token.cancelled:
                # Best-effort responses of an interrupted pass must not be
                # served as final on resume; the persisted checkpoints
                # already carry everything worth keeping.
                self._store.set_status(job_id, "cancelled")
                return
            for local, global_index in enumerate(group_global):
                response = stored.get(global_index, responses[local])
                ordered[global_index] = response
                if global_index not in stored:
                    self._store.record_response(job_id, global_index,
                                                response.to_json())
        result = wrap_result(kind, request,
                             ordered)  # type: ignore[arg-type]
        self._store.record_result(job_id, result.to_json())
        self._store.set_status(job_id, "done")

    def _apply_scale_defaults(self, kind: str, request: Any) -> Any:
        """Fill the service-wide scale/scan defaults into ``request``.

        Only requests that did not choose for themselves are touched
        (``scale_tier == "auto"`` / ``scale_budget_bytes is None`` /
        default ``scan_mode`` with no ``scan_workers``), so a job spec
        naming an explicit tier, budget, or scan configuration keeps it.
        Applied at execution time — the stored ``request_json`` (and with
        it the dedup fingerprint) stays exactly what the client submitted.
        """
        if (self._scale_tier == "auto" and self._scale_budget_bytes is None
                and self._scan_workers is None):
            return request

        def patch(req: AnonymizationRequest) -> AnonymizationRequest:
            overrides: Dict[str, Any] = {}
            if self._scale_tier != "auto" and req.scale_tier == "auto":
                overrides["scale_tier"] = self._scale_tier
            if (self._scale_budget_bytes is not None
                    and req.scale_budget_bytes is None):
                overrides["scale_budget_bytes"] = self._scale_budget_bytes
            if self._scan_workers is not None and req.scan_workers is None:
                if req.scan_mode == "batched":
                    overrides["scan_mode"] = "parallel"
                    overrides["scan_workers"] = self._scan_workers
                elif req.scan_mode == "parallel":
                    overrides["scan_workers"] = self._scan_workers
            return dataclasses.replace(req, **overrides) if overrides else req

        if kind == "anonymize":
            return patch(request)
        return dataclasses.replace(
            request, requests=tuple(patch(req) for req in request.requests))

    @staticmethod
    def _spill_prefix(job_id: str) -> str:
        """Deterministic per-job prefix of the tiled tier's spill files.

        Stable across restarts (it depends only on the job id), so a
        resumed job's rebuilt :class:`~repro.api.cache.ExecutionCache`
        re-opens the spill files its interrupted predecessor warmed.
        """
        return os.path.join(tempfile.gettempdir(), f"repro-job-{job_id}")

    def _cleanup_spills(self, job_id: str) -> None:
        """Remove the job's spill files and sidecar indexes (best-effort)."""
        for path in glob.glob(self._spill_prefix(job_id) + "-*.tiles*"):
            try:
                os.remove(path)
            except OSError:
                pass

    def _execute_pooled(self, job_id: str, kind: str, request: Any,
                        requests: List[AnonymizationRequest],
                        token: CancellationToken) -> None:
        """Fan a whole job across a process pool (no checkpoint streaming)."""
        from repro.api.batch import BatchRunner

        runner = BatchRunner(max_workers=self._max_workers,
                             data_dir=self._data_dir,
                             shared_memory=self._shared_memory)
        stats = None
        if kind == "anonymize":
            responses = runner.run(requests)
        elif kind == "sweep":
            responses = runner.run_sweep(request)
        else:
            from repro.api.cache import GridStats

            stats = GridStats()
            responses = runner.run_grid(request, stats=stats)
        if token.cancelled:
            self._store.set_status(job_id, "cancelled")
            return
        for index, response in enumerate(responses):
            self._store.record_response(job_id, index, response.to_json())
        result = wrap_result(kind, request, list(responses))
        if stats is not None and stats.tracked:
            result = dataclasses.replace(
                result, num_sample_loads=stats.sample_loads,
                num_distance_computes=stats.distance_computes)
        self._store.record_result(job_id, result.to_json())
        self._store.set_status(job_id, "done")
