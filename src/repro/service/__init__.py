"""Anonymization-as-a-service: HTTP job layer over a persistent run store.

The batch/grid engine (:mod:`repro.api`) executes work in-process and
forgets it on exit.  This package is the durable front door (DESIGN.md
§11):

* :mod:`repro.service.store` — :class:`RunStore`, one SQLite file holding
  jobs (request JSON + canonical fingerprint + status), streamed per-θ
  checkpoints, per-request responses, and final results; identical
  resubmissions are answered from the store.
* :mod:`repro.service.jobs` — :class:`JobManager`, a background worker
  executing submitted jobs on the existing engine, persisting checkpoints
  as they stream, and resuming interrupted grids from their last persisted
  checkpoint on startup.
* :mod:`repro.service.http` — the stdlib ``ThreadingHTTPServer`` layer
  (``POST /jobs``, ``GET /jobs``, ``GET /jobs/{id}``,
  ``GET /jobs/{id}/result``, ``DELETE /jobs/{id}``, ``POST /admin/init``),
  started by ``repro-lopacity serve``.
* :mod:`repro.service.client` — :class:`ServiceClient`, a thin urllib
  client used by tests and scripts.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.http import create_server, make_handler
from repro.service.jobs import JOB_KINDS, JobManager, parse_request
from repro.service.store import RunStore

__all__ = [
    "JOB_KINDS",
    "JobManager",
    "RunStore",
    "ServiceClient",
    "ServiceError",
    "create_server",
    "make_handler",
    "parse_request",
]
