"""The stdlib HTTP front door of the anonymization service.

Routes (JSON in, JSON out; no dependencies beyond ``http.server``):

========  =======================  ==========================================
Method    Path                     Meaning
========  =======================  ==========================================
POST      ``/jobs``                Submit ``{"kind", "request"}``; 201 on a
                                   new job, 200 when deduped onto an
                                   existing one.
GET       ``/jobs``                List all jobs (newest first).
GET       ``/jobs/{id}``           Live status: job row, progress counters,
                                   latest persisted checkpoint.
GET       ``/jobs/{id}/result``    The final result; 409 until the job is
                                   done, 404 for unknown ids.
DELETE    ``/jobs/{id}``           Cancel a queued/running job.
POST      ``/admin/init``          ``{"reset": bool}`` — re-init the store
                                   (reset archives a rolling backup); 409
                                   while jobs are in flight.
GET       ``/healthz``             Liveness probe.
========  =======================  ==========================================

Malformed JSON, unknown job kinds, and invalid request payloads
(:class:`~repro.errors.ReproError`) all map to HTTP 400 with
``{"error": ...}`` — one bad client never takes the server down.  The
server is a ``ThreadingHTTPServer`` (one thread per connection, daemon
threads); all state lives in the shared :class:`~repro.service.jobs.JobManager`
/ :class:`~repro.service.store.RunStore` pair, which are thread-safe.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.errors import ReproError
from repro.service.jobs import JobManager, parse_request
from repro.service.store import RunStore

__all__ = ["create_server", "make_handler"]

_MAX_BODY = 64 * 1024 * 1024  # refuse absurd request bodies outright


def make_handler(manager: JobManager, store: RunStore) -> type:
    """Build the request-handler class bound to one manager/store pair."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        # --------------------------------------------------------------
        # plumbing
        # --------------------------------------------------------------
        def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
            pass  # keep test/CI output clean; errors surface as responses

        def _send(self, status: int, payload: Dict[str, Any]) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _read_json(self) -> Any:
            length = int(self.headers.get("Content-Length") or 0)
            if length > _MAX_BODY:
                raise ValueError(f"request body too large ({length} bytes)")
            raw = self.rfile.read(length) if length else b""
            if not raw:
                raise ValueError("request body must be JSON")
            return json.loads(raw)

        def _route(self) -> Tuple[str, Optional[str], Optional[str]]:
            """Split the path into (collection, id, action)."""
            parts = [part for part in self.path.split("?", 1)[0].split("/")
                     if part]
            collection = parts[0] if parts else ""
            item = parts[1] if len(parts) > 1 else None
            action = parts[2] if len(parts) > 2 else None
            return collection, item, action

        # --------------------------------------------------------------
        # methods
        # --------------------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 — http.server API
            collection, item, action = self._route()
            if collection == "healthz" and item is None:
                self._send(200, {"ok": True})
                return
            if collection != "jobs":
                self._send(404, {"error": f"unknown path {self.path!r}"})
                return
            if item is None:
                self._send(200, {"jobs": store.list_jobs()})
                return
            if action is None:
                status = manager.status(item)
                if status is None:
                    self._send(404, {"error": f"unknown job {item!r}"})
                    return
                self._send(200, status)
                return
            if action == "result":
                job = store.get_job(item)
                if job is None:
                    self._send(404, {"error": f"unknown job {item!r}"})
                    return
                if job["status"] != "done":
                    self._send(409, {"error": f"job {item} is "
                                              f"{job['status']}, not done",
                                     "status": job["status"]})
                    return
                result = store.get_result(item)
                if result is None:
                    self._send(409, {"error": f"job {item} has no stored "
                                              f"result"})
                    return
                self._send(200, {"job_id": item, "kind": job["kind"],
                                 "result": json.loads(result)})
                return
            self._send(404, {"error": f"unknown path {self.path!r}"})

        def do_POST(self) -> None:  # noqa: N802 — http.server API
            collection, item, action = self._route()
            try:
                if collection == "jobs" and item is None:
                    payload = self._read_json()
                    if not isinstance(payload, dict):
                        raise ValueError("submission must be a JSON object")
                    kind = payload.get("kind", "anonymize")
                    request = parse_request(kind, payload.get("request"))
                    outcome = manager.submit(kind, request)
                    self._send(200 if outcome["deduped"] else 201, outcome)
                    return
                if collection == "admin" and item == "init" and action is None:
                    try:
                        payload = self._read_json()
                    except ValueError:
                        payload = {}
                    if not isinstance(payload, dict):
                        raise ValueError("init options must be a JSON object")
                    in_flight = [job for job in store.list_jobs()
                                 if job["status"] in ("queued", "running")]
                    if in_flight:
                        self._send(409, {"error": f"{len(in_flight)} job(s) "
                                                  f"in flight; cancel them "
                                                  f"before re-initializing"})
                        return
                    self._send(200, store.init_db(
                        reset=bool(payload.get("reset", False))))
                    return
                self._send(404, {"error": f"unknown path {self.path!r}"})
            except (ReproError, ValueError, KeyError, TypeError,
                    json.JSONDecodeError) as exc:
                self._send(400, {"error": f"{type(exc).__name__}: {exc}"})

        def do_DELETE(self) -> None:  # noqa: N802 — http.server API
            collection, item, action = self._route()
            if collection != "jobs" or item is None or action is not None:
                self._send(404, {"error": f"unknown path {self.path!r}"})
                return
            job = store.get_job(item)
            if job is None:
                self._send(404, {"error": f"unknown job {item!r}"})
                return
            cancelled = manager.cancel(item)
            self._send(200, {"job_id": item, "cancelled": cancelled,
                             "status": (store.get_job(item) or job)["status"]})

    return Handler


def create_server(host: str, port: int, manager: JobManager,
                  store: RunStore) -> ThreadingHTTPServer:
    """A ready-to-serve HTTP server bound to ``host:port`` (0 = ephemeral)."""
    server = ThreadingHTTPServer((host, port), make_handler(manager, store))
    server.daemon_threads = True
    return server
