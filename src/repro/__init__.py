"""repro — a full reproduction of "L-opacity: Linkage-Aware Graph Anonymization"
(Nobari, Karras, Pang, Bressan — EDBT 2014).

Quickstart
----------
>>> from repro import EdgeRemovalAnonymizer, erdos_renyi_graph
>>> graph = erdos_renyi_graph(40, 0.15, seed=1)
>>> result = EdgeRemovalAnonymizer(length_threshold=2, theta=0.5, seed=0).anonymize(graph)
>>> result.final_opacity <= 0.5
True

The public API re-exported here covers the privacy model
(:class:`OpacityComputer`, :class:`DegreePairTyping`), the two heuristics of
the paper (:class:`EdgeRemovalAnonymizer`, :class:`EdgeRemovalInsertionAnonymizer`),
the Zhang & Zhang baselines, the utility metrics, the datasets, the graph
substrate, and the service layer (:mod:`repro.api`): a pluggable algorithm
registry, JSON-serializable :class:`AnonymizationRequest` /
:class:`AnonymizationResponse` records, progress/timeout/cancellation
observers, and :class:`BatchRunner` fan-out across worker processes::

    from repro import AnonymizationRequest, anonymize
    response = anonymize(AnonymizationRequest(
        algorithm="rem-ins", dataset="enron", sample_size=80, theta=0.5))

See DESIGN.md for the subsystem map and EXPERIMENTS.md for the reproduced
tables and figures.
"""

from repro._version import __version__
from repro.errors import (
    ConfigurationError,
    DatasetError,
    GraphError,
    GridAbortedError,
    InfeasibleError,
    InvalidEdgeError,
    ReproError,
)
from repro.graph import (
    Graph,
    TriangularMatrix,
    available_engines,
    barabasi_albert_graph,
    bounded_distance_matrix,
    erdos_renyi_graph,
    graph_properties,
    powerlaw_cluster_graph,
    read_edge_list,
    watts_strogatz_graph,
    write_edge_list,
)
from repro.core import (
    AnonymizationResult,
    AnonymizerConfig,
    DegreeAdversary,
    DegreePairTyping,
    EdgeRemovalAnonymizer,
    EdgeRemovalInsertionAnonymizer,
    ExplicitPairTyping,
    OpacityComputer,
    OpacityResult,
    OpacitySession,
)
from repro.core.opacity import max_lo
from repro.baselines import (
    GadedMaxAnonymizer,
    GadedRandAnonymizer,
    GadesAnonymizer,
    link_disclosure_summary,
)
from repro.metrics import (
    UtilityReport,
    edit_distance_ratio,
    emd_between_histograms,
    mean_clustering_difference,
    utility_report,
)
from repro.datasets import load_dataset, load_sample, dataset_names
from repro.api import (
    AnonymizationRequest,
    AnonymizationResponse,
    AnonymizerRegistry,
    BatchRunner,
    CancellationToken,
    GridRequest,
    GridResponse,
    ProgressObserver,
    StepLimitObserver,
    TimeoutObserver,
    anonymize,
    available_algorithms,
    compute_opacity,
    create_anonymizer,
    default_registry,
    register_anonymizer,
    run_grid,
    sweep,
)

__all__ = [
    "__version__",
    "ReproError",
    "GraphError",
    "InvalidEdgeError",
    "ConfigurationError",
    "InfeasibleError",
    "DatasetError",
    "GridAbortedError",
    "Graph",
    "TriangularMatrix",
    "available_engines",
    "bounded_distance_matrix",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "powerlaw_cluster_graph",
    "graph_properties",
    "read_edge_list",
    "write_edge_list",
    "DegreeAdversary",
    "DegreePairTyping",
    "ExplicitPairTyping",
    "OpacityComputer",
    "OpacityResult",
    "OpacitySession",
    "max_lo",
    "AnonymizerConfig",
    "AnonymizationResult",
    "EdgeRemovalAnonymizer",
    "EdgeRemovalInsertionAnonymizer",
    "GadedRandAnonymizer",
    "GadedMaxAnonymizer",
    "GadesAnonymizer",
    "link_disclosure_summary",
    "UtilityReport",
    "utility_report",
    "edit_distance_ratio",
    "emd_between_histograms",
    "mean_clustering_difference",
    "load_dataset",
    "load_sample",
    "dataset_names",
    "AnonymizationRequest",
    "AnonymizationResponse",
    "AnonymizerRegistry",
    "BatchRunner",
    "CancellationToken",
    "GridRequest",
    "GridResponse",
    "ProgressObserver",
    "StepLimitObserver",
    "TimeoutObserver",
    "anonymize",
    "available_algorithms",
    "compute_opacity",
    "create_anonymizer",
    "default_registry",
    "register_anonymizer",
    "run_grid",
    "sweep",
]
