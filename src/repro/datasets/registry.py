"""Dataset descriptors: the published statistics of Tables 1, 2 and 3.

Each :class:`DatasetSpec` records what the paper reports for the original
graph (Table 1 and 2) plus the properties of the random samples the
experiments actually run on (Table 3).  The synthetic proxy generators are
calibrated against the *sample* statistics, because those are the graphs the
algorithms see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import DatasetError


@dataclass(frozen=True)
class SampleSpec:
    """Properties of one sampled graph, as reported in Table 3."""

    nodes: int
    links: int
    diameter: int
    average_degree: float
    degree_stddev: float
    clustering: float


@dataclass(frozen=True)
class DatasetSpec:
    """One of the paper's seven datasets (Tables 1 and 2) and its samples."""

    name: str
    nodes: int
    links: int
    node_kind: str
    link_kind: str
    diameter: int
    average_degree: float
    degree_stddev: float
    clustering: float
    snap_filename: Optional[str] = None
    samples: Mapping[int, SampleSpec] = field(default_factory=dict)

    def sample_spec(self, size: int) -> Optional[SampleSpec]:
        """The Table 3 row for a sample of ``size`` nodes, if the paper reports one."""
        return self.samples.get(size)


def _spec(name: str, nodes: int, links: int, node_kind: str, link_kind: str,
          diameter: int, avg_deg: float, stdd: float, acc: float,
          snap_filename: Optional[str],
          samples: Dict[int, Tuple[int, int, float, float, float]]) -> DatasetSpec:
    sample_specs = {
        size: SampleSpec(nodes=size, links=links_, diameter=diameter_,
                         average_degree=avg_, degree_stddev=std_, clustering=acc_)
        for size, (links_, diameter_, avg_, std_, acc_) in samples.items()
    }
    return DatasetSpec(name=name, nodes=nodes, links=links, node_kind=node_kind,
                       link_kind=link_kind, diameter=diameter, average_degree=avg_deg,
                       degree_stddev=stdd, clustering=acc, snap_filename=snap_filename,
                       samples=sample_specs)


#: The seven datasets of Table 1/2, with the sampled-graph rows of Table 3.
DATASETS: Dict[str, DatasetSpec] = {
    "google": _spec(
        "google", 875_713, 5_105_039, "Web pages", "Hyperlinks",
        22, 11.6, 16.4, 0.6047, "web-Google.txt",
        {100: (746, 7, 14.92, 11.13, 0.76),
         500: (3_104, 15, 12.42, 10.54, 0.70),
         1000: (6_445, 25, 12.89, 12.62, 0.70)}),
    "berkeley-stanford": _spec(
        "berkeley-stanford", 685_230, 7_600_595, "Web pages", "Hyperlinks",
        669, 22.1, 10.99, 0.6149, "web-BerkStan.txt",
        {500: (4_454, 6, 17.82, 21.50, 0.62)}),
    "epinions": _spec(
        "epinions", 132_000, 841_372, "Users", "Trust statements",
        9, 12.7, 32.68, 0.1062, "soc-Epinions1.txt",
        {100: (65, 4, 1.3, 0.72, 0.04)}),
    "enron": _spec(
        "enron", 36_692, 367_662, "Email addresses", "Transferred emails",
        12, 20.0, 18.58, 0.4970, "email-Enron.txt",
        {100: (346, 4, 6.92, 9.28, 0.31),
         500: (5_686, 4, 22.74, 25.81, 0.37)}),
    "gnutella": _spec(
        "gnutella", 10_876, 39_994, "Hosts", "Connections",
        9, 7.4, 3.01, 0.0080, "p2p-Gnutella04.txt",
        {100: (116, 6, 2.32, 3.00, 0.05),
         500: (721, 8, 2.88, 3.19, 0.09),
         1000: (1_852, 8, 3.71, 3.51, 0.02)}),
    "acm": _spec(
        "acm", 10_000, 19_894, "Authors", "Co-authorships",
        400, 3.97, 6.23, 0.5279, None,
        {}),
    "wikipedia": _spec(
        "wikipedia", 7_115, 103_689, "Users and candidates", "Votes",
        7, 29.1, 60.39, 0.2089, "wiki-Vote.txt",
        {100: (919, 3, 18.38, 15.19, 0.54),
         500: (7_244, 4, 28.98, 33.02, 0.39)}),
}


def dataset_names() -> Tuple[str, ...]:
    """Names of all registered datasets."""
    return tuple(DATASETS)


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset by (case-insensitive) name."""
    key = name.strip().lower()
    if key not in DATASETS:
        raise DatasetError(f"unknown dataset {name!r}; known: {', '.join(DATASETS)}")
    return DATASETS[key]
