"""Datasets used in the paper's evaluation, with offline synthetic stand-ins.

The paper samples six SNAP graphs (web-Google, web-BerkStan, soc-Epinions,
email-Enron, p2p-Gnutella, wiki-Vote) plus an ACM Digital Library crawl.
Those files are not redistributable with this repository, so
:mod:`repro.datasets.loaders` loads a real edge list when one is present
under ``data/`` and otherwise synthesizes a calibrated proxy whose sampled
graphs match the density and clustering regime reported in Table 3.
"""

from repro.datasets.registry import (
    DATASETS,
    DatasetSpec,
    SampleSpec,
    dataset_names,
    get_dataset,
)
from repro.datasets.synthetic import synthesize_dataset, synthesize_sample
from repro.datasets.loaders import load_sample, load_dataset

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "SampleSpec",
    "dataset_names",
    "get_dataset",
    "synthesize_dataset",
    "synthesize_sample",
    "load_sample",
    "load_dataset",
]
