"""Calibrated synthetic stand-ins for the paper's sampled SNAP graphs.

The experiments of Section 6 run on random vertex samples (100-1000 nodes)
of seven real networks.  Offline, this module synthesizes graphs with the
same node count, (approximately) the same edge count, and the same
density/clustering regime as the corresponding Table 3 row, so the
anonymization algorithms face workloads of the same character:

* web graphs and e-mail/voting graphs (Google, Berkeley-Stanford, Enron,
  Wikipedia) — heavy-tailed degrees with strong local clustering →
  power-law-cluster generator;
* peer-to-peer and trust samples (Gnutella, Epinions) — sparse, almost
  tree-like, negligible clustering → uniform G(n, m);
* the ACM co-authorship crawl — sparse, clustered, heavy-tailed (a few
  prolific authors) → power-law-cluster generator with low attachment.

After generation the edge count is nudged to the exact target by random
insertions/removals so the distortion denominators match the paper's setup.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.datasets.registry import DatasetSpec, get_dataset
from repro.errors import DatasetError
from repro.graph.generators import (
    gnm_random_graph,
    powerlaw_cluster_graph,
    watts_strogatz_graph,
)
from repro.graph.graph import Graph

#: Generator family per dataset name.
_FAMILIES = {
    "google": "powerlaw-cluster",
    "berkeley-stanford": "powerlaw-cluster",
    "enron": "powerlaw-cluster",
    "wikipedia": "powerlaw-cluster",
    "epinions": "sparse-random",
    "gnutella": "sparse-random",
    "acm": "powerlaw-cluster",
}

#: Triangle-closure probability used for the clustered families, tuned so the
#: generated samples land in the ACC regime of Table 3.
_TRIANGLE_PROBABILITY = 0.85


def _target_edges(spec: DatasetSpec, size: int) -> int:
    sample = spec.sample_spec(size)
    if sample is not None:
        return sample.links
    # No Table 3 row for this size: borrow the average degree of the closest
    # reported sample (the induced samples of Table 3 keep a density close to,
    # and sometimes above, the full graph's), falling back to the original
    # average degree for datasets without reported samples (ACM).
    if spec.samples:
        closest = min(spec.samples.values(), key=lambda row: abs(row.nodes - size))
        average_degree = closest.average_degree
    else:
        average_degree = spec.average_degree
    max_edges = size * (size - 1) // 2
    return max(1, min(max_edges, int(round(average_degree * size / 2.0))))


def _adjust_edge_count(graph: Graph, target_edges: int, rng: random.Random) -> Graph:
    """Randomly add or remove edges until ``graph`` has exactly ``target_edges``."""
    max_edges = graph.num_vertices * (graph.num_vertices - 1) // 2
    target_edges = min(target_edges, max_edges)
    while graph.num_edges > target_edges:
        edges = graph.edge_list()
        graph.remove_edge(*edges[rng.randrange(len(edges))])
    while graph.num_edges < target_edges:
        u = rng.randrange(graph.num_vertices)
        v = rng.randrange(graph.num_vertices)
        if u != v:
            graph.add_edge_if_absent(u, v)
    return graph


def synthesize_sample(name: str, size: int, seed: Optional[int] = None) -> Graph:
    """Synthesize a proxy for the ``size``-node sample of dataset ``name``."""
    spec = get_dataset(name)
    if size < 2:
        raise DatasetError(f"sample size must be at least 2, got {size}")
    rng = random.Random(seed)
    family = _FAMILIES.get(spec.name, "sparse-random")
    target_edges = _target_edges(spec, size)
    average_degree = 2.0 * target_edges / size

    if family == "powerlaw-cluster":
        attachment = max(1, min(size - 1, round(average_degree / 2.0)))
        graph = powerlaw_cluster_graph(size, attachment, _TRIANGLE_PROBABILITY, seed=rng)
    elif family == "small-world":
        # A ring lattice needs at least 4 neighbors to contain triangles; the
        # edge-count adjustment below trims back down to the sparse target.
        neighbors = max(4, 2 * round(average_degree / 2.0))
        neighbors = min(neighbors, size - 1 if (size - 1) % 2 == 0 else size - 2)
        neighbors = max(4, neighbors)
        graph = watts_strogatz_graph(size, neighbors, 0.1, seed=rng)
    else:  # sparse-random
        graph = gnm_random_graph(size, target_edges, seed=rng)

    return _adjust_edge_count(graph, target_edges, rng)


def synthesize_dataset(name: str, num_nodes: Optional[int] = None,
                       seed: Optional[int] = None) -> Graph:
    """Synthesize a larger proxy of the full dataset (for sampling demos).

    ``num_nodes`` defaults to a laptop-scale 2000 nodes; generating the full
    million-node SNAP graphs offline is neither feasible nor needed, because
    every experiment in the paper runs on samples.
    """
    spec = get_dataset(name)
    size = num_nodes if num_nodes is not None else 2000
    rng = random.Random(seed)
    target_edges = int(spec.average_degree * size / 2.0)
    family = _FAMILIES.get(spec.name, "sparse-random")
    if family == "powerlaw-cluster":
        attachment = max(1, min(size - 1, round(spec.average_degree / 2.0)))
        graph = powerlaw_cluster_graph(size, attachment, _TRIANGLE_PROBABILITY, seed=rng)
    elif family == "small-world":
        neighbors = max(2, 2 * round(spec.average_degree / 2.0))
        graph = watts_strogatz_graph(size, neighbors, 0.15, seed=rng)
    else:
        graph = gnm_random_graph(size, target_edges, seed=rng)
    return _adjust_edge_count(graph, target_edges, rng)
