"""Dataset loading: real SNAP edge lists when available, synthetic proxies otherwise.

Drop the original SNAP files (e.g. ``web-Google.txt``) into a ``data/``
directory to run the experiments on the paper's actual inputs; without them
the loaders transparently fall back to the calibrated synthetic proxies of
:mod:`repro.datasets.synthetic`, which is the default offline behaviour.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.datasets.registry import get_dataset
from repro.datasets.synthetic import synthesize_dataset, synthesize_sample
from repro.graph.graph import Graph
from repro.graph.io import read_edge_list
from repro.graph.sampling import sample_graph

PathLike = Union[str, Path]

#: Default directory searched for real SNAP edge lists.
DEFAULT_DATA_DIR = Path("data")


def _snap_path(name: str, data_dir: Optional[PathLike]) -> Optional[Path]:
    spec = get_dataset(name)
    if spec.snap_filename is None:
        return None
    directory = Path(data_dir) if data_dir is not None else DEFAULT_DATA_DIR
    candidate = directory / spec.snap_filename
    return candidate if candidate.exists() else None


def load_dataset(name: str, data_dir: Optional[PathLike] = None,
                 num_nodes: Optional[int] = None, seed: Optional[int] = None) -> Graph:
    """Load the full dataset graph (real file if present, proxy otherwise)."""
    path = _snap_path(name, data_dir)
    if path is not None:
        graph, _labels = read_edge_list(path)
        return graph
    return synthesize_dataset(name, num_nodes=num_nodes, seed=seed)


def load_sample(name: str, size: int, data_dir: Optional[PathLike] = None,
                seed: Optional[int] = None) -> Graph:
    """Load a ``size``-node sample of the dataset (Section 6.1 methodology).

    With a real SNAP file present, ``size`` vertices are sampled uniformly
    and the induced subgraph is returned; otherwise a calibrated synthetic
    sample is generated directly.
    """
    path = _snap_path(name, data_dir)
    if path is not None:
        graph, _labels = read_edge_list(path)
        sampled, _mapping = sample_graph(graph, size, seed=seed)
        return sampled
    return synthesize_sample(name, size, seed=seed)
