"""Exception hierarchy for the L-opacity reproduction library.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch one base class when they want to distinguish library failures from
programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Raised for invalid graph operations (bad vertices, duplicate edges...)."""


class InvalidEdgeError(GraphError):
    """Raised when an edge references unknown vertices or is a self-loop."""


class ConfigurationError(ReproError):
    """Raised when algorithm or experiment parameters are invalid."""


class InfeasibleError(ReproError):
    """Raised when an anonymization target cannot be met.

    For example, the Edge Removal heuristic ran out of edges without
    reaching the requested opacity threshold, and the caller asked for
    strict behaviour instead of a best-effort result.
    """


class DistanceMemoryError(ReproError):
    """Raised when a dense distance matrix would blow the byte budget.

    The up-front guard estimates ``n² × itemsize`` before allocating and
    refuses instead of dying on an opaque :class:`MemoryError` mid-grid.
    The fix is almost always switching the run to the out-of-core tier
    (``scale_tier="tiled"`` / ``--scale-tier tiled``), which streams the
    matrix through a bounded tile cache instead of materializing it.
    """


class DatasetError(ReproError):
    """Raised when a dataset cannot be located, parsed, or synthesized."""


class GridAbortedError(ReproError):
    """Raised when a grid running with ``on_error="fail_fast"`` hits a failure.

    The first failing request (or sample-group load error) aborts the whole
    grid instead of being isolated into an error response.
    """
