"""Spectral utility metrics.

The paper mentions "utility metrics quantifying spectral and structural
graph properties"; the structural ones (distortion, EMD, clustering) drive
the plotted figures, and this module supplies the spectral side: the largest
adjacency eigenvalue (related to path capacity / epidemic threshold) and the
algebraic connectivity (second-smallest Laplacian eigenvalue), both commonly
used to judge how much anonymization perturbs global structure.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph


def largest_adjacency_eigenvalue(graph: Graph) -> float:
    """Largest eigenvalue of the adjacency matrix (0.0 for empty graphs)."""
    if graph.num_vertices == 0:
        return 0.0
    adjacency = graph.adjacency_matrix(dtype=np.float64)
    eigenvalues = np.linalg.eigvalsh(adjacency)
    return float(eigenvalues[-1])


def laplacian_matrix(graph: Graph) -> np.ndarray:
    """Combinatorial Laplacian ``L = D - A`` of the graph."""
    adjacency = graph.adjacency_matrix(dtype=np.float64)
    degrees = np.diag(adjacency.sum(axis=1))
    return degrees - adjacency


def algebraic_connectivity(graph: Graph) -> float:
    """Second-smallest Laplacian eigenvalue (0.0 for graphs with < 2 vertices).

    Zero exactly when the graph is disconnected, so this metric tracks how
    close anonymization comes to fragmenting the network.
    """
    if graph.num_vertices < 2:
        return 0.0
    eigenvalues = np.linalg.eigvalsh(laplacian_matrix(graph))
    return float(eigenvalues[1])


def spectral_gap(graph: Graph) -> float:
    """Gap between the two largest adjacency eigenvalues."""
    if graph.num_vertices < 2:
        return 0.0
    adjacency = graph.adjacency_matrix(dtype=np.float64)
    eigenvalues = np.linalg.eigvalsh(adjacency)
    return float(eigenvalues[-1] - eigenvalues[-2])
