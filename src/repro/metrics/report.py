"""Combined utility report comparing an original graph with its anonymization.

Every record of a θ sweep compares *the same* original graph against a
different anonymized graph, yet the original's side of each metric (its
degree and geodesic histograms, its per-vertex clustering coefficients, its
spectral quantities) does not depend on the anonymization at all.
:func:`graph_baseline` computes that side once; :func:`utility_report`
accepts the resulting :class:`GraphBaseline` and reuses it, producing
bit-identical metrics to the baseline-free path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.graph.graph import Graph
from repro.metrics.clustering import mean_clustering_difference
from repro.metrics.distortion import edit_distance_ratio
from repro.metrics.distributions import degree_distribution, geodesic_distribution
from repro.metrics.emd import emd_between_histograms
from repro.metrics.spectral import algebraic_connectivity, largest_adjacency_eigenvalue
from repro.graph.properties import local_clustering_coefficients


@dataclass(frozen=True)
class UtilityReport:
    """Every utility/alteration metric reported by the paper, for one pair of graphs."""

    distortion: float
    degree_emd: float
    geodesic_emd: float
    mean_clustering_difference: float
    eigenvalue_shift: float
    connectivity_shift: float

    def as_dict(self) -> Dict[str, float]:
        """Return the report as a plain dictionary (for CSV / tabular output)."""
        return {
            "distortion": self.distortion,
            "degree_emd": self.degree_emd,
            "geodesic_emd": self.geodesic_emd,
            "mean_cc_diff": self.mean_clustering_difference,
            "eigenvalue_shift": self.eigenvalue_shift,
            "connectivity_shift": self.connectivity_shift,
        }


@dataclass(frozen=True)
class GraphBaseline:
    """The original-graph side of every utility metric, computed once.

    All entries are pure functions of the graph's edge set, so a baseline
    may be cached per dataset sample and shared across every record of a
    sweep; the spectral fields stay ``None`` unless requested.
    """

    degree_histogram: Dict[int, float]
    geodesic_histogram: Dict[int, float]
    clustering_coefficients: Tuple[float, ...]
    largest_eigenvalue: Optional[float] = None
    algebraic_connectivity: Optional[float] = None


def graph_baseline(graph: Graph, include_spectral: bool = False) -> GraphBaseline:
    """Precompute the original-graph side of :func:`utility_report`."""
    return GraphBaseline(
        degree_histogram=degree_distribution(graph),
        geodesic_histogram=geodesic_distribution(graph),
        clustering_coefficients=tuple(local_clustering_coefficients(graph)),
        largest_eigenvalue=(largest_adjacency_eigenvalue(graph)
                            if include_spectral else None),
        algebraic_connectivity=(algebraic_connectivity(graph)
                                if include_spectral else None),
    )


def utility_report(original: Graph, modified: Graph,
                   include_spectral: bool = True,
                   baseline: Optional[GraphBaseline] = None) -> UtilityReport:
    """Compute the full utility report between two graphs over the same vertices.

    ``baseline`` may carry the original graph's precomputed side (from
    :func:`graph_baseline` on a graph with the same edge set); the report is
    bit-identical with or without it.  A baseline built without spectral
    quantities falls back to computing them when ``include_spectral`` is
    requested.
    """
    if baseline is None:
        baseline = graph_baseline(original, include_spectral=include_spectral)
    degree_emd = emd_between_histograms(
        baseline.degree_histogram, degree_distribution(modified))
    geodesic_emd = emd_between_histograms(
        baseline.geodesic_histogram, geodesic_distribution(modified))
    if include_spectral:
        original_eigenvalue = (baseline.largest_eigenvalue
                               if baseline.largest_eigenvalue is not None
                               else largest_adjacency_eigenvalue(original))
        original_connectivity = (baseline.algebraic_connectivity
                                 if baseline.algebraic_connectivity is not None
                                 else algebraic_connectivity(original))
        eigenvalue_shift = abs(original_eigenvalue
                               - largest_adjacency_eigenvalue(modified))
        connectivity_shift = abs(original_connectivity
                                 - algebraic_connectivity(modified))
    else:
        eigenvalue_shift = 0.0
        connectivity_shift = 0.0
    return UtilityReport(
        distortion=edit_distance_ratio(original, modified),
        degree_emd=degree_emd,
        geodesic_emd=geodesic_emd,
        mean_clustering_difference=mean_clustering_difference(
            original, modified,
            original_coefficients=baseline.clustering_coefficients),
        eigenvalue_shift=eigenvalue_shift,
        connectivity_shift=connectivity_shift,
    )
