"""Combined utility report comparing an original graph with its anonymization."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.graph.graph import Graph
from repro.metrics.clustering import mean_clustering_difference
from repro.metrics.distortion import edit_distance_ratio
from repro.metrics.distributions import degree_distribution, geodesic_distribution
from repro.metrics.emd import emd_between_histograms
from repro.metrics.spectral import algebraic_connectivity, largest_adjacency_eigenvalue


@dataclass(frozen=True)
class UtilityReport:
    """Every utility/alteration metric reported by the paper, for one pair of graphs."""

    distortion: float
    degree_emd: float
    geodesic_emd: float
    mean_clustering_difference: float
    eigenvalue_shift: float
    connectivity_shift: float

    def as_dict(self) -> Dict[str, float]:
        """Return the report as a plain dictionary (for CSV / tabular output)."""
        return {
            "distortion": self.distortion,
            "degree_emd": self.degree_emd,
            "geodesic_emd": self.geodesic_emd,
            "mean_cc_diff": self.mean_clustering_difference,
            "eigenvalue_shift": self.eigenvalue_shift,
            "connectivity_shift": self.connectivity_shift,
        }


def utility_report(original: Graph, modified: Graph,
                   include_spectral: bool = True) -> UtilityReport:
    """Compute the full utility report between two graphs over the same vertices."""
    degree_emd = emd_between_histograms(
        degree_distribution(original), degree_distribution(modified))
    geodesic_emd = emd_between_histograms(
        geodesic_distribution(original), geodesic_distribution(modified))
    if include_spectral:
        eigenvalue_shift = abs(largest_adjacency_eigenvalue(original)
                               - largest_adjacency_eigenvalue(modified))
        connectivity_shift = abs(algebraic_connectivity(original)
                                 - algebraic_connectivity(modified))
    else:
        eigenvalue_shift = 0.0
        connectivity_shift = 0.0
    return UtilityReport(
        distortion=edit_distance_ratio(original, modified),
        degree_emd=degree_emd,
        geodesic_emd=geodesic_emd,
        mean_clustering_difference=mean_clustering_difference(original, modified),
        eigenvalue_shift=eigenvalue_shift,
        connectivity_shift=connectivity_shift,
    )
