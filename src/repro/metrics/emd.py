"""Earth Mover's Distance between one-dimensional distributions.

The paper (Section 6.2) compares the degree distribution and the geodesic
distribution of the original and anonymized graphs using the Earth Mover's
Distance [Rubner et al. 2000].  For one-dimensional histograms over an
ordered support the EMD equals the L1 distance between the cumulative
distribution functions, which is what this module computes.

Unreachable geodesic distances (the :data:`UNREACHABLE` sentinel) are mapped
to a dedicated bin placed one step beyond the largest finite distance, so
that "became unreachable" counts as one unit of moved mass per step rather
than an astronomically distant bin.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.graph.matrices import UNREACHABLE


def _remap_unreachable(histogram: Dict[int, float], cap: int) -> Dict[int, float]:
    if UNREACHABLE not in histogram:
        return dict(histogram)
    remapped = {key: value for key, value in histogram.items() if key != UNREACHABLE}
    remapped[cap] = remapped.get(cap, 0.0) + histogram[UNREACHABLE]
    return remapped


def emd_between_histograms(first: Dict[int, float], second: Dict[int, float]) -> float:
    """EMD between two histograms keyed by integer support values.

    Both histograms are normalized to unit mass before the comparison, so the
    result only reflects the *shape* difference, as in the paper.
    """
    if not first and not second:
        return 0.0
    finite_keys = [key for key in set(first) | set(second) if key != UNREACHABLE]
    cap = (max(finite_keys) + 1) if finite_keys else 1
    first = _remap_unreachable(first, cap)
    second = _remap_unreachable(second, cap)
    support = sorted(set(first) | set(second))
    mass_first = np.array([first.get(key, 0.0) for key in support], dtype=float)
    mass_second = np.array([second.get(key, 0.0) for key in support], dtype=float)
    if mass_first.sum() > 0:
        mass_first = mass_first / mass_first.sum()
    if mass_second.sum() > 0:
        mass_second = mass_second / mass_second.sum()
    # 1-D EMD with unit ground distance between consecutive support points:
    # sum over support gaps of |CDF difference| * gap width.
    cdf_diff = np.cumsum(mass_first - mass_second)
    gaps = np.diff(np.array(support, dtype=float))
    if gaps.size == 0:
        return 0.0
    return float(np.sum(np.abs(cdf_diff[:-1]) * gaps))


def earth_movers_distance(first: Sequence[float], second: Sequence[float]) -> float:
    """EMD between two aligned histograms given as equal-length sequences."""
    if len(first) != len(second):
        raise ValueError("sequences must have equal length; use emd_between_histograms otherwise")
    return emd_between_histograms(
        {index: value for index, value in enumerate(first)},
        {index: value for index, value in enumerate(second)},
    )
