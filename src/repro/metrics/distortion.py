"""Graph alteration measured as edit distance over edge sets (Equation 1).

The paper measures distortion as the symmetric difference between the edge
sets of the original and anonymized graphs, normalized by the original edge
count:  ``D(E, Ê) = |E Δ Ê| / |E|``.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.graph.graph import Graph


def edge_edit_distance(original: Graph, modified: Graph) -> int:
    """Size of the symmetric difference of the two edge sets ``|E Δ Ê|``."""
    if original.num_vertices != modified.num_vertices:
        raise ConfigurationError(
            "edit distance requires graphs over the same vertex set "
            f"({original.num_vertices} vs {modified.num_vertices} vertices)")
    return len(original.edge_set() ^ modified.edge_set())


def edit_distance_ratio(original: Graph, modified: Graph) -> float:
    """Equation 1: symmetric-difference size normalized by ``|E|``.

    A graph with no edges has zero distortion against itself; against any
    non-identical edge set the ratio is reported as ``float('inf')`` because
    the paper's normalization is undefined there.
    """
    distance = edge_edit_distance(original, modified)
    if original.num_edges == 0:
        return 0.0 if distance == 0 else float("inf")
    return distance / original.num_edges
