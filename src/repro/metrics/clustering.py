"""Clustering-coefficient utility metric (Section 6.2 / Figure 8).

For every vertex the local clustering coefficient is computed in the
original and in the anonymized graph; the reported metric is the mean of the
absolute per-vertex differences ``mean_i |C_i - C'_i|``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.graph import Graph
from repro.graph.properties import local_clustering_coefficients


def clustering_coefficient_differences(
        original: Graph, modified: Graph,
        original_coefficients: Optional[Sequence[float]] = None) -> List[float]:
    """Per-vertex absolute differences of local clustering coefficients.

    ``original_coefficients`` may carry the original graph's per-vertex
    coefficients (e.g. from a cached
    :class:`~repro.metrics.report.GraphBaseline`) so a sweep computes them
    once per sample instead of once per record.
    """
    if original.num_vertices != modified.num_vertices:
        raise ConfigurationError("graphs must share the same vertex set")
    before = (list(original_coefficients) if original_coefficients is not None
              else local_clustering_coefficients(original))
    after = local_clustering_coefficients(modified)
    return [abs(b - a) for b, a in zip(before, after)]


def mean_clustering_difference(
        original: Graph, modified: Graph,
        original_coefficients: Optional[Sequence[float]] = None) -> float:
    """Mean of the per-vertex |ΔCC| values (the Figure 8 metric)."""
    differences = clustering_coefficient_differences(
        original, modified, original_coefficients=original_coefficients)
    if not differences:
        return 0.0
    return float(np.mean(differences))
