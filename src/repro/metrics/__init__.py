"""Alteration and utility metrics used in the paper's evaluation (Section 6.2).

* Edit-distance distortion (Equation 1).
* Earth Mover's Distance between degree and geodesic-distance distributions.
* Mean absolute difference of local clustering coefficients.
* Spectral utility metrics (extra, for the ablation benches).
"""

from repro.metrics.distortion import edit_distance_ratio, edge_edit_distance
from repro.metrics.distributions import (
    degree_distribution,
    geodesic_distribution,
    normalize_distribution,
)
from repro.metrics.emd import earth_movers_distance, emd_between_histograms
from repro.metrics.clustering import (
    clustering_coefficient_differences,
    mean_clustering_difference,
)
from repro.metrics.spectral import largest_adjacency_eigenvalue, spectral_gap
from repro.metrics.report import (
    GraphBaseline,
    UtilityReport,
    graph_baseline,
    utility_report,
)

__all__ = [
    "edit_distance_ratio",
    "edge_edit_distance",
    "degree_distribution",
    "geodesic_distribution",
    "normalize_distribution",
    "earth_movers_distance",
    "emd_between_histograms",
    "clustering_coefficient_differences",
    "mean_clustering_difference",
    "largest_adjacency_eigenvalue",
    "spectral_gap",
    "GraphBaseline",
    "UtilityReport",
    "graph_baseline",
    "utility_report",
]
