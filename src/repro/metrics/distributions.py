"""Degree and geodesic-distance distributions (inputs to the EMD metric)."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.graph.distance import floyd_warshall
from repro.graph.graph import Graph
from repro.graph.matrices import UNREACHABLE


def degree_distribution(graph: Graph) -> Dict[int, float]:
    """Relative frequency of each degree value over the vertices."""
    n = graph.num_vertices
    if n == 0:
        return {}
    values, counts = np.unique(graph.degree_array(), return_counts=True)
    return {int(value): float(count) / n for value, count in zip(values, counts)}


def geodesic_distribution(graph: Graph, include_unreachable: bool = True) -> Dict[int, float]:
    """Relative frequency of geodesic distances over all vertex pairs.

    Unreachable pairs are included under the key :data:`UNREACHABLE` when
    ``include_unreachable`` is true (they matter for the alteration
    comparison: removals create unreachable pairs).
    """
    n = graph.num_vertices
    total_pairs = n * (n - 1) // 2
    if total_pairs == 0:
        return {}
    distances = floyd_warshall(graph)
    upper = distances[np.triu_indices(n, k=1)]
    values, counts = np.unique(upper, return_counts=True)
    histogram = {int(value): float(count) / total_pairs for value, count in zip(values, counts)}
    if not include_unreachable:
        histogram.pop(UNREACHABLE, None)
    return histogram


def normalize_distribution(histogram: Dict[int, float]) -> Dict[int, float]:
    """Scale a histogram so its values sum to 1 (no-op for empty input)."""
    total = sum(histogram.values())
    if total == 0:
        return dict(histogram)
    return {key: value / total for key, value in histogram.items()}
